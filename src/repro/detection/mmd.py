"""Kernel Maximum Mean Discrepancy (Gretton et al., 2012).

MMD compares two sample sets by the distance between their mean embeddings
in the RKHS of a positive-definite kernel.  We use the RBF kernel
``k(x, y) = exp(-gamma * ||x - y||^2)`` with the median heuristic for
``gamma`` by default, matching the paper's detector.

Estimators
----------
* :func:`mmd2_biased` — the V-statistic; always non-negative, O(n^2).
* :func:`mmd2_unbiased` — the U-statistic; unbiased but can dip below zero
  on small samples, O(n^2).
* :func:`linear_time_mmd2` — the paired linear-time estimator, O(n); used
  when parties report on large windows.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d


def _pairwise_sq_dists(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance matrix between rows of x and rows of y."""
    x_norm = (x ** 2).sum(axis=1)[:, None]
    y_norm = (y ** 2).sum(axis=1)[None, :]
    d2 = x_norm + y_norm - 2.0 * (x @ y.T)
    return np.maximum(d2, 0.0)


def median_heuristic_gamma(x: np.ndarray, y: np.ndarray | None = None) -> float:
    """RBF bandwidth via the median heuristic: ``gamma = 1 / (2 * median^2)``.

    The median is taken over pairwise distances of the pooled sample.  Falls
    back to 1.0 when all points coincide.
    """
    x = check_2d(x, "x")
    pooled = x if y is None else np.vstack([x, check_2d(y, "y")])
    d2 = _pairwise_sq_dists(pooled, pooled)
    upper = d2[np.triu_indices_from(d2, k=1)]
    if upper.size == 0:
        return 1.0
    med2 = float(np.median(upper))
    if med2 <= 0:
        return 1.0
    return 1.0 / (2.0 * med2)


def rbf_kernel(x: np.ndarray, y: np.ndarray, gamma: float) -> np.ndarray:
    """RBF Gram matrix ``exp(-gamma * ||x_i - y_j||^2)``."""
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    return np.exp(-gamma * _pairwise_sq_dists(check_2d(x, "x"), check_2d(y, "y")))


def mmd2_biased(x: np.ndarray, y: np.ndarray, gamma: float | None = None) -> float:
    """Biased (V-statistic) squared MMD; non-negative by construction."""
    x, y = check_2d(x, "x"), check_2d(y, "y")
    if gamma is None:
        gamma = median_heuristic_gamma(x, y)
    kxx = rbf_kernel(x, x, gamma).mean()
    kyy = rbf_kernel(y, y, gamma).mean()
    kxy = rbf_kernel(x, y, gamma).mean()
    return float(max(kxx + kyy - 2.0 * kxy, 0.0))


def mmd2_unbiased(x: np.ndarray, y: np.ndarray, gamma: float | None = None) -> float:
    """Unbiased (U-statistic) squared MMD; requires >= 2 samples per set."""
    x, y = check_2d(x, "x"), check_2d(y, "y")
    n, m = x.shape[0], y.shape[0]
    if n < 2 or m < 2:
        raise ValueError("unbiased MMD needs at least 2 samples in each set")
    if gamma is None:
        gamma = median_heuristic_gamma(x, y)
    kxx = rbf_kernel(x, x, gamma)
    kyy = rbf_kernel(y, y, gamma)
    kxy = rbf_kernel(x, y, gamma)
    sum_xx = (kxx.sum() - np.trace(kxx)) / (n * (n - 1))
    sum_yy = (kyy.sum() - np.trace(kyy)) / (m * (m - 1))
    return float(sum_xx + sum_yy - 2.0 * kxy.mean())


def mmd(x: np.ndarray, y: np.ndarray, gamma: float | None = None) -> float:
    """MMD distance (square root of the biased squared estimate)."""
    return float(np.sqrt(mmd2_biased(x, y, gamma)))


def class_conditional_mmd(x: np.ndarray, x_labels: np.ndarray,
                          y: np.ndarray, y_labels: np.ndarray,
                          gamma: float | None = None,
                          min_per_class: int = 2) -> float:
    """Label-stratified MMD: count-weighted mean of per-class MMDs.

    Parties hold their own labels, so Algorithm 1 can condition the covariate
    statistic on Y.  This isolates movement of ``P(X|Y)``'s image in feature
    space from label-composition sampling noise — essential at small window
    sizes, where a fresh multinomial label draw alone moves unconditional
    MMD.  Label-distribution changes are JSD's job, keeping the two detectors
    orthogonal.  Falls back to unconditional MMD when no class appears at
    least ``min_per_class`` times in both sets.
    """
    x, y = check_2d(x, "x"), check_2d(y, "y")
    x_labels = np.asarray(x_labels)
    y_labels = np.asarray(y_labels)
    if x_labels.shape != (x.shape[0],) or y_labels.shape != (y.shape[0],):
        raise ValueError("labels must align with embedding rows")
    if gamma is None:
        gamma = median_heuristic_gamma(x, y)
    total, weight = 0.0, 0
    for c in np.intersect1d(np.unique(x_labels), np.unique(y_labels)):
        a = x[x_labels == c]
        b = y[y_labels == c]
        if a.shape[0] >= min_per_class and b.shape[0] >= min_per_class:
            n = min(a.shape[0], b.shape[0])
            total += mmd(a, b, gamma) * n
            weight += n
    if weight == 0:
        return mmd(x, y, gamma)
    return float(total / weight)


def mmd_to_many(x: np.ndarray, ys: list[np.ndarray],
                gamma: float | None = None) -> np.ndarray:
    """Biased MMD of ``x`` against each sample set in ``ys``, batched.

    The expensive ``x``-side kernel block is computed once and the cross
    blocks against every ``y`` come from one stacked matmul, so scoring one
    cluster against ``k`` expert memories costs a single pass over ``x``
    instead of ``k`` (the per-expert loop this replaces).  Matches
    ``[mmd(x, y, gamma) for y in ys]`` to floating-point noise.

    With ``gamma=None`` each pair needs its own median-heuristic bandwidth,
    so the per-pair estimator runs instead.
    """
    x = check_2d(x, "x")
    ys = [check_2d(y, "y") for y in ys]
    if not ys:
        return np.zeros(0)
    if gamma is None:
        return np.array([mmd(x, y, None) for y in ys])
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    kxx_mean = np.exp(-gamma * _pairwise_sq_dists(x, x)).mean()
    stacked = np.vstack(ys)
    kxy = np.exp(-gamma * _pairwise_sq_dists(x, stacked))
    out = np.empty(len(ys))
    offset = 0
    for i, y in enumerate(ys):
        kyy_mean = np.exp(-gamma * _pairwise_sq_dists(y, y)).mean()
        kxy_mean = kxy[:, offset:offset + y.shape[0]].mean()
        offset += y.shape[0]
        out[i] = np.sqrt(max(kxx_mean + kyy_mean - 2.0 * kxy_mean, 0.0))
    return out


def mmd_many_to_many(xs: list[np.ndarray], ys: list[np.ndarray],
                     gamma: float | None = None) -> np.ndarray:
    """Biased MMD of every ``x`` in ``xs`` against every ``y`` in ``ys``.

    The multi-cluster generalization of :func:`mmd_to_many`: each target
    set's self-kernel mean is computed **once** for all clusters (the term a
    per-cluster loop recomputes ``len(xs)`` times) and every cross block
    comes from a single stacked Gram evaluation — one kernel matrix per
    window instead of one per cluster.  Returns a ``(len(xs), len(ys))``
    matrix matching ``[[mmd(x, y, gamma) for y in ys] for x in xs]`` to
    floating-point noise.

    With ``gamma=None`` each pair needs its own median-heuristic bandwidth,
    so the per-cluster estimator runs instead.
    """
    xs = [check_2d(x, "x") for x in xs]
    ys = [check_2d(y, "y") for y in ys]
    if not xs or not ys:
        return np.zeros((len(xs), len(ys)))
    if gamma is None:
        return np.stack([mmd_to_many(x, ys, None) for x in xs])
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    kxx_means = np.array([
        np.exp(-gamma * _pairwise_sq_dists(x, x)).mean() for x in xs])
    kyy_means = np.array([
        np.exp(-gamma * _pairwise_sq_dists(y, y)).mean() for y in ys])
    cross = np.exp(-gamma * _pairwise_sq_dists(np.vstack(xs), np.vstack(ys)))
    out = np.empty((len(xs), len(ys)))
    row = 0
    for i, x in enumerate(xs):
        col = 0
        for j, y in enumerate(ys):
            kxy_mean = cross[row:row + x.shape[0],
                             col:col + y.shape[0]].mean()
            out[i, j] = np.sqrt(max(
                kxx_means[i] + kyy_means[j] - 2.0 * kxy_mean, 0.0))
            col += y.shape[0]
        row += x.shape[0]
    return out


def class_conditional_mmd_many_to_many(xs: list[np.ndarray],
                                       xs_labels: list[np.ndarray],
                                       ys: list[np.ndarray],
                                       ys_labels: list[np.ndarray],
                                       gamma: float | None = None,
                                       min_per_class: int = 2) -> np.ndarray:
    """Batched :func:`class_conditional_mmd` for many clusters x many sets.

    Stratifies once per class across *all* clusters and memories and scores
    each class stratum with one :func:`mmd_many_to_many` Gram evaluation.
    Pairs with no sufficiently populated shared class fall back to
    unconditional MMD, exactly like the per-pair estimator.  Returns a
    ``(len(xs), len(ys))`` matrix.
    """
    xs = [check_2d(x, "x") for x in xs]
    ys = [check_2d(y, "y") for y in ys]
    xs_labels = [np.asarray(xl) for xl in xs_labels]
    ys_labels = [np.asarray(yl) for yl in ys_labels]
    if len(xs) != len(xs_labels) or len(ys) != len(ys_labels):
        raise ValueError("embeddings and labels lists must align")
    for arr, labels in list(zip(xs, xs_labels)) + list(zip(ys, ys_labels)):
        if labels.shape != (arr.shape[0],):
            raise ValueError("labels must align with embedding rows")
    if not xs or not ys:
        return np.zeros((len(xs), len(ys)))
    if gamma is None:
        return np.stack([
            class_conditional_mmd_to_many(x, xl, ys, ys_labels, None,
                                          min_per_class)
            for x, xl in zip(xs, xs_labels)
        ])
    totals = np.zeros((len(xs), len(ys)))
    weights = np.zeros((len(xs), len(ys)), dtype=int)
    classes = np.unique(np.concatenate(xs_labels)) if xs_labels else []
    for c in classes:
        x_members = [(i, xs[i][xs_labels[i] == c]) for i in range(len(xs))]
        x_members = [(i, a) for i, a in x_members
                     if a.shape[0] >= min_per_class]
        if not x_members:
            continue
        y_members = [(j, ys[j][ys_labels[j] == c]) for j in range(len(ys))]
        y_members = [(j, b) for j, b in y_members
                     if b.shape[0] >= min_per_class]
        if not y_members:
            continue
        vals = mmd_many_to_many([a for _i, a in x_members],
                                [b for _j, b in y_members], gamma)
        for xi, (i, a) in enumerate(x_members):
            for yj, (j, b) in enumerate(y_members):
                n = min(a.shape[0], b.shape[0])
                totals[i, j] += vals[xi, yj] * n
                weights[i, j] += n
    out = np.empty((len(xs), len(ys)))
    conditioned = weights > 0
    out[conditioned] = totals[conditioned] / weights[conditioned]
    for i, j in zip(*np.nonzero(~conditioned)):
        out[i, j] = mmd(xs[i], ys[j], gamma)
    return out


def class_conditional_mmd_to_many(x: np.ndarray, x_labels: np.ndarray,
                                  ys: list[np.ndarray],
                                  ys_labels: list[np.ndarray],
                                  gamma: float | None = None,
                                  min_per_class: int = 2) -> np.ndarray:
    """Batched :func:`class_conditional_mmd` of ``x`` against many sets.

    Stratifies once per class and scores all eligible ``y`` sets together via
    :func:`mmd_to_many`, sharing the ``x``-side kernel work across sets.
    Sets with no sufficiently populated shared class fall back to
    unconditional MMD, exactly like the per-pair estimator.
    """
    x = check_2d(x, "x")
    x_labels = np.asarray(x_labels)
    if x_labels.shape != (x.shape[0],):
        raise ValueError("labels must align with embedding rows")
    ys = [check_2d(y, "y") for y in ys]
    ys_labels = [np.asarray(yl) for yl in ys_labels]
    if len(ys) != len(ys_labels):
        raise ValueError("ys and ys_labels must align")
    for y, yl in zip(ys, ys_labels):
        if yl.shape != (y.shape[0],):
            raise ValueError("labels must align with embedding rows")
    if not ys:
        return np.zeros(0)
    if gamma is None:
        return np.array([
            class_conditional_mmd(x, x_labels, y, yl, None, min_per_class)
            for y, yl in zip(ys, ys_labels)
        ])
    totals = np.zeros(len(ys))
    weights = np.zeros(len(ys), dtype=int)
    for c in np.unique(x_labels):
        a = x[x_labels == c]
        if a.shape[0] < min_per_class:
            continue
        members = [(i, ys[i][ys_labels[i] == c]) for i in range(len(ys))]
        members = [(i, b) for i, b in members if b.shape[0] >= min_per_class]
        if not members:
            continue
        vals = mmd_to_many(a, [b for _i, b in members], gamma)
        for (i, b), val in zip(members, vals):
            n = min(a.shape[0], b.shape[0])
            totals[i] += val * n
            weights[i] += n
    out = np.empty(len(ys))
    conditioned = weights > 0
    out[conditioned] = totals[conditioned] / weights[conditioned]
    fallback = [i for i in range(len(ys)) if not conditioned[i]]
    if fallback:
        out[fallback] = mmd_to_many(x, [ys[i] for i in fallback], gamma)
    return out


def linear_time_mmd2(x: np.ndarray, y: np.ndarray, gamma: float | None = None) -> float:
    """Linear-time MMD^2 estimator (Gretton et al., 2012, Lemma 14).

    Uses ``h((x_2i, y_2i), (x_2i+1, y_2i+1))`` averaged over disjoint pairs.
    Both sets are truncated to the same even length.
    """
    x, y = check_2d(x, "x"), check_2d(y, "y")
    n = min(x.shape[0], y.shape[0])
    n -= n % 2
    if n < 2:
        raise ValueError("linear-time MMD needs at least 2 samples per set")
    x, y = x[:n], y[:n]
    if gamma is None:
        gamma = median_heuristic_gamma(x, y)
    x1, x2 = x[0::2], x[1::2]
    y1, y2 = y[0::2], y[1::2]

    def k(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.exp(-gamma * ((a - b) ** 2).sum(axis=1))

    h = k(x1, x2) + k(y1, y2) - k(x1, y2) - k(x2, y1)
    return float(h.mean())
