"""Gradual-drift monitoring (the paper's shift-vs-drift distinction).

Section 2.1 separates abrupt *shift* (one large between-window change, what
the thresholded MMD detector catches) from gradual *drift*: "a sequence of
small shifts that accumulate and degrade model performance over time ...
often requiring sustained monitoring".  A per-window threshold test misses
drift by construction — each step is sub-threshold.

:class:`DriftMonitor` implements the sustained-monitoring companion to the
shift detector: it accumulates per-window scores two ways and flags drift
when either crosses its bound.

* **EWMA channel** — an exponentially weighted moving average of the scores;
  catches a persistent elevation of the per-window statistic.
* **CUSUM channel** — a one-sided cumulative sum of (score - baseline
  drift); catches slow accumulations that never elevate any single window
  much.

Baselines are calibrated from the same no-shift nulls as the thresholds, so
the monitor needs no extra reference material.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class DriftVerdict:
    """Outcome of feeding one window's score into the monitor."""

    window: int
    score: float
    ewma: float
    cusum: float
    drift_detected: bool
    channel: str | None  # "ewma" | "cusum" | None


@dataclass
class DriftMonitor:
    """Sustained monitoring of per-window shift scores for one party.

    Parameters
    ----------
    baseline : expected score under no shift (e.g. the null mean).
    ewma_alpha : smoothing factor of the EWMA channel.
    ewma_threshold : EWMA level that flags drift (e.g. the null's 95th
        percentile — persistent elevation at a level single windows may not
        individually breach).
    cusum_slack : per-window slack subtracted before accumulation (drifts
        slower than this stay invisible; usually a fraction of the null std).
    cusum_threshold : accumulated excess that flags drift.
    """

    baseline: float
    ewma_alpha: float = 0.3
    ewma_threshold: float = 0.0
    cusum_slack: float = 0.0
    cusum_threshold: float = 1.0
    _ewma: float | None = field(default=None, init=False)
    _cusum: float = field(default=0.0, init=False)
    _window: int = field(default=-1, init=False)
    history: list[DriftVerdict] = field(default_factory=list, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.cusum_threshold <= 0:
            raise ValueError("cusum_threshold must be positive")
        if self.baseline < 0 or self.ewma_threshold < 0 or self.cusum_slack < 0:
            raise ValueError("baseline, thresholds and slack must be non-negative")

    @classmethod
    def from_null_scores(cls, null_scores: np.ndarray, ewma_alpha: float = 0.3,
                         severity: float | None = None) -> "DriftMonitor":
        """Calibrate a monitor from a no-shift null sample.

        ``severity`` controls how many null standard deviations of sustained
        excess constitute drift.  ``None`` takes the historical default
        (``drift_monitor.severity`` in
        :data:`repro.detection.thresholds.BASE_THRESHOLDS`); callers with a
        :class:`~repro.federation.strategy.StrategyContext` should pass
        ``ctx.threshold("drift_monitor.severity", 3.0)`` so the run
        precision's recalibrated table applies.
        """
        if severity is None:
            from repro.detection.thresholds import BASE_THRESHOLDS
            severity = BASE_THRESHOLDS["drift_monitor.severity"]
        null_scores = np.asarray(null_scores, dtype=np.float64)
        if null_scores.size < 2:
            raise ValueError("need at least two null scores to calibrate")
        mean = float(null_scores.mean())
        std = float(null_scores.std(ddof=1))
        return cls(
            baseline=mean,
            ewma_alpha=ewma_alpha,
            ewma_threshold=mean + severity * std,
            cusum_slack=0.5 * std,
            cusum_threshold=severity * 2.0 * std,
        )

    def observe(self, score: float) -> DriftVerdict:
        """Feed one window's score; returns the updated verdict."""
        if not np.isfinite(score) or score < 0:
            raise ValueError("score must be a non-negative finite value")
        self._window += 1
        if self._ewma is None:
            self._ewma = score
        else:
            self._ewma = (1 - self.ewma_alpha) * self._ewma + self.ewma_alpha * score
        self._cusum = max(0.0, self._cusum + (score - self.baseline
                                              - self.cusum_slack))
        channel: str | None = None
        if self.ewma_threshold > 0 and self._ewma > self.ewma_threshold:
            channel = "ewma"
        elif self._cusum > self.cusum_threshold:
            channel = "cusum"
        verdict = DriftVerdict(
            window=self._window,
            score=float(score),
            ewma=float(self._ewma),
            cusum=float(self._cusum),
            drift_detected=channel is not None,
            channel=channel,
        )
        self.history.append(verdict)
        return verdict

    def reset(self) -> None:
        """Clear accumulated state (after the system has adapted)."""
        self._ewma = None
        self._cusum = 0.0

    @property
    def windows_observed(self) -> int:
        return self._window + 1
