"""Shift detection statistics and threshold calibration.

Covariate shift is scored with kernel Maximum Mean Discrepancy over latent
embeddings (paper Section 4.2); label shift with Jensen–Shannon divergence
over normalized label histograms (Section 4.3).  Thresholds are derived from
bootstrap null distributions under the no-shift hypothesis (Section 5),
giving p-value-calibrated deltas.
"""

from repro.detection.mmd import (
    rbf_kernel,
    median_heuristic_gamma,
    mmd2_biased,
    mmd2_unbiased,
    mmd,
    class_conditional_mmd,
    linear_time_mmd2,
)
from repro.detection.divergence import kl_divergence, jsd, jsd_max
from repro.detection.drift import DriftMonitor, DriftVerdict
from repro.detection.calibration import (
    bootstrap_mmd_null,
    bootstrap_jsd_null,
    bootstrap_party_mmd_null,
    threshold_from_null,
    ThresholdCalibrator,
    CalibratedThresholds,
)

__all__ = [
    "rbf_kernel",
    "median_heuristic_gamma",
    "mmd2_biased",
    "mmd2_unbiased",
    "mmd",
    "class_conditional_mmd",
    "linear_time_mmd2",
    "kl_divergence",
    "jsd",
    "jsd_max",
    "bootstrap_mmd_null",
    "bootstrap_jsd_null",
    "bootstrap_party_mmd_null",
    "threshold_from_null",
    "ThresholdCalibrator",
    "DriftMonitor",
    "DriftVerdict",
    "CalibratedThresholds",
]
