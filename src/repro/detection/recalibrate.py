"""Re-derive detection/matching thresholds for a target precision.

    python -m repro.detection.recalibrate --precision float32

The seed reproduction's fixed thresholds (``BASE_THRESHOLDS`` in
:mod:`repro.detection.thresholds`) were tuned on the all-float64 plane.
Changing the parameter dtype moves every statistic those thresholds gate —
encoder embeddings shift by rounding, parameter cosines lose mantissa,
losses move by accumulation order — so instead of freezing float64 forever,
this tool *measures* how far each underlying statistic moves on seeded
calibration workloads and widens the threshold by a documented margin.

Margin rule
-----------
For every threshold key, the tool computes the statistic the threshold is
compared against on both planes — once at float64, once with models built
at the target precision — over every ``(dataset, seed)`` calibration
workload, and takes the maximum observed discrepancy ``d``:

* additive thresholds (``fielding.recluster_jsd``, ``feddrift.delta``,
  ``shiftex.tau``): ``value = base ± margin_factor * d``, signed in the
  *permissive* direction (JSD/loss bars move up so rounding never flags a
  spurious shift; the cosine floor moves down so rounding never blocks a
  merge the float64 plane would have made);
* scale thresholds (``shiftex.epsilon_scale``, ``drift_monitor.severity``):
  ``value = base * (1 + margin_factor * d_rel)`` with ``d_rel`` the relative
  discrepancy of the MMD statistic they scale.

``margin_factor`` defaults to 4: the margin covers four times the worst
discrepancy actually observed, which is generous against workload-to-run
variation yet tiny in absolute terms (float32 rounding moves these
statistics by ~1e-7..1e-4), so the recalibrated table reproduces the seed's
detection *decisions* — pinned by ``tests/test_precision_recalibration.py``.

Recalibrating *at* float64 measures zero discrepancy everywhere and emits
the historical values unchanged — that identity is the float64 table.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.data.federated import FederatedShiftDataset
from repro.detection.divergence import jsd
from repro.detection.mmd import class_conditional_mmd, median_heuristic_gamma
from repro.detection.thresholds import (BASE_THRESHOLDS, ThresholdTable,
                                        load_threshold_table,
                                        save_threshold_table, table_path)
from repro.federation.party import Party
from repro.harness.profiles import get_profile
from repro.nn.models import build_model
from repro.utils.params import flatten_params, resolve_dtype
from repro.utils.precision import PrecisionPlan
from repro.utils.rng import spawn_rng

TABLE_VERSION = 1
DEFAULT_MARGIN_FACTOR = 4.0
CALIBRATION_DATASETS = ("fashion_mnist_sim", "cifar10_c_sim")
CALIBRATION_SEEDS = (0, 1)
_PARTIES_PER_WORKLOAD = 4
_TINY = 1e-12


def _embedding_planes(spec, ds, seed: int, params_dtype: np.dtype):
    """One workload's statistics on the float64 vs target-precision plane.

    Builds the same seeded model at both dtypes, binds the same real party
    windows, and returns per-party ``(embeddings, labels, histogram, loss)``
    for each plane — the raw material every threshold statistic is computed
    from.  Detection statistics downstream are float64 either way (the
    island); the discrepancy measured here is exactly what a mixed
    ``params=float32, detection_stats=float64`` run feeds the detectors.
    """
    rng = spawn_rng(seed, "recalibrate-parties", spec.name)
    pids = sorted(int(p) for p in rng.choice(
        spec.num_parties, size=min(_PARTIES_PER_WORKLOAD, spec.num_parties),
        replace=False))
    planes = {}
    for dtype in dict.fromkeys((np.dtype(np.float64), params_dtype)):
        model = build_model(spec.model_name, spec.input_shape,
                            spec.num_classes,
                            spawn_rng(seed, "recalibrate-model", spec.name),
                            dtype=dtype)
        encoder = model.get_params()
        stats = []
        for pid in pids:
            party = Party(pid, model, spec.num_classes, seed=seed)
            party.set_window_data(ds.party_window(pid, 0))
            emb, labels = party.embeddings_with_labels(
                encoder, split="train", max_samples=48)
            stats.append((np.asarray(emb, dtype=np.float64), labels,
                          party.label_histogram(),
                          float(party.loss_on(encoder, split="train"))))
            party.release()
        planes[str(dtype)] = stats
    return planes


def _param_cosines(spec, seed: int, dtype: np.dtype,
                   n_vectors: int = 6) -> np.ndarray:
    """Off-diagonal cosines of near-parallel model parameter vectors.

    Experts are clones of the bootstrap model plus training deltas, so
    consolidation compares vectors with cosine near ``tau`` ~ 0.99; small
    seeded perturbations of one init reproduce that regime.  Computed
    entirely at ``dtype`` — the consolidation Gram runs on the parameter
    plane, not the detection island.
    """
    model = build_model(spec.model_name, spec.input_shape, spec.num_classes,
                        spawn_rng(seed, "recalibrate-model", spec.name),
                        dtype=dtype)
    base = flatten_params(model.get_params()).astype(dtype, copy=False)
    rng = spawn_rng(seed, "recalibrate-perturb", spec.name)
    scale = 0.05 * float(np.linalg.norm(base.astype(np.float64))) \
        / max(1.0, np.sqrt(base.size))
    rows = np.stack([
        base + np.asarray(rng.normal(0.0, scale, size=base.size), dtype=dtype)
        for _ in range(n_vectors)])
    normed = rows / np.linalg.norm(rows, axis=1, keepdims=True)
    sims = normed @ normed.T
    return sims[~np.eye(n_vectors, dtype=bool)].astype(np.float64)


def measure_discrepancies(precision: PrecisionPlan,
                          datasets=CALIBRATION_DATASETS,
                          seeds=CALIBRATION_SEEDS) -> dict:
    """Max per-statistic discrepancy between float64 and the target plane."""
    params_dtype = precision.np_params
    out = {"cosine": 0.0, "mmd_abs": 0.0, "mmd_rel": 0.0,
           "jsd": 0.0, "loss": 0.0}
    workloads = []
    for dataset in datasets:
        spec, _settings = get_profile("ci", dataset)
        ds = FederatedShiftDataset(spec)
        for seed in seeds:
            workloads.append(f"{dataset}:ci:seed{seed}")
            cos64 = _param_cosines(spec, seed, np.dtype(np.float64))
            cos32 = _param_cosines(spec, seed, params_dtype)
            out["cosine"] = max(out["cosine"],
                                float(np.abs(cos64 - cos32).max()))
            planes = _embedding_planes(spec, ds, seed, params_dtype)
            ref = planes["float64"]
            tgt = planes[str(params_dtype)]
            for i in range(len(ref)):
                for j in range(i + 1, len(ref)):
                    e_i64, l_i64 = ref[i][0], ref[i][1]
                    e_j64, l_j64 = ref[j][0], ref[j][1]
                    gamma = median_heuristic_gamma(e_i64, e_j64)
                    m64 = class_conditional_mmd(e_i64, l_i64, e_j64, l_j64,
                                                gamma)
                    m32 = class_conditional_mmd(tgt[i][0], tgt[i][1],
                                                tgt[j][0], tgt[j][1], gamma)
                    d = abs(float(m64) - float(m32))
                    out["mmd_abs"] = max(out["mmd_abs"], d)
                    out["mmd_rel"] = max(out["mmd_rel"],
                                         d / max(abs(float(m64)), _TINY))
                    out["jsd"] = max(out["jsd"], abs(
                        float(jsd(ref[i][2], ref[j][2]))
                        - float(jsd(tgt[i][2], tgt[j][2]))))
            for r, t in zip(ref, tgt):
                out["loss"] = max(out["loss"], abs(r[3] - t[3]))
    out["workloads"] = tuple(workloads)
    return out


def recalibrate(precision, margin_factor: float = DEFAULT_MARGIN_FACTOR,
                datasets=CALIBRATION_DATASETS,
                seeds=CALIBRATION_SEEDS) -> ThresholdTable:
    """Measure discrepancies and apply the margin rule (module docstring)."""
    precision = PrecisionPlan.from_value(precision)
    d = measure_discrepancies(precision, datasets=datasets, seeds=seeds)

    def entry(key: str, statistic: str, discrepancy: float, direction: str,
              relative: bool) -> dict:
        base = BASE_THRESHOLDS[key]
        margin = margin_factor * discrepancy * (base if relative else 1.0)
        value = base + margin if direction == "up" else base - margin
        return {
            "value": float(value),
            "base": float(base),
            "margin": float(margin),
            "statistic": statistic,
            "statistic_discrepancy": float(discrepancy),
            "direction": direction,
        }

    thresholds = {
        "shiftex.tau": entry(
            "shiftex.tau", "pairwise parameter cosine", d["cosine"],
            "down", relative=False),
        "shiftex.epsilon_scale": entry(
            "shiftex.epsilon_scale", "class-conditional MMD (relative)",
            d["mmd_rel"], "up", relative=True),
        "fielding.recluster_jsd": entry(
            "fielding.recluster_jsd", "label-histogram JSD", d["jsd"],
            "up", relative=False),
        "feddrift.delta": entry(
            "feddrift.delta", "local train loss", d["loss"],
            "up", relative=False),
        "drift_monitor.severity": entry(
            "drift_monitor.severity", "class-conditional MMD (relative)",
            d["mmd_rel"], "up", relative=True),
    }
    reference = {
        "statistic_discrepancies": {
            k: float(v) for k, v in d.items() if k != "workloads"},
        "margin_factor": float(margin_factor),
        "calibration_seeds": list(seeds),
    }
    return ThresholdTable(
        precision=precision.params,
        version=TABLE_VERSION,
        margin_rule=(f"value = base +/- {margin_factor:g} x max seeded-"
                     f"workload statistic discrepancy (relative x base for "
                     f"scale thresholds), signed permissively"),
        thresholds=thresholds,
        reference=reference,
        workloads=tuple(d["workloads"]),
    )


def _print_table(table: ThresholdTable, stream=sys.stdout) -> None:
    print(f"threshold table: precision={table.precision} "
          f"version={table.version}", file=stream)
    print(f"  workloads: {', '.join(table.workloads)}", file=stream)
    width = max(len(k) for k in table.thresholds)
    for key, e in sorted(table.thresholds.items()):
        print(f"  {key:<{width}}  base={e['base']:<10.6g} "
              f"value={e['value']:<12.8g} margin={e['margin']:.3g} "
              f"({e['direction']}, {e['statistic']})", file=stream)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.detection.recalibrate",
        description="re-derive detection thresholds for a target precision")
    parser.add_argument("--precision", default="float32",
                        help="target precision: a dtype or a "
                             "'params=...,detection_stats=...' spec "
                             "(default float32)")
    parser.add_argument("--margin-factor", type=float,
                        default=DEFAULT_MARGIN_FACTOR,
                        help="margin widening factor over the worst "
                             "observed discrepancy (default 4)")
    parser.add_argument("--out", default=None,
                        help="output path (default: the committed table "
                             "location the profiles load)")
    parser.add_argument("--check", action="store_true",
                        help="recompute and compare against the committed "
                             "table instead of writing; exit 1 on drift")
    args = parser.parse_args(argv)
    try:
        precision = PrecisionPlan.from_value(args.precision)
    except (ValueError, TypeError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    table = recalibrate(precision, margin_factor=args.margin_factor)
    _print_table(table)
    if args.check:
        committed = load_threshold_table(precision)
        if committed is None:
            print(f"no committed table at {table_path(precision)}",
                  file=sys.stderr)
            return 1
        for key, e in table.thresholds.items():
            have = committed.thresholds.get(key, {}).get("value")
            if have is None or not np.isclose(have, e["value"],
                                              rtol=1e-6, atol=1e-12):
                print(f"drift: {key} committed={have} "
                      f"recomputed={e['value']}", file=sys.stderr)
                return 1
        print("committed table matches")
        return 0
    out = args.out if args.out is not None else table_path(precision)
    path = save_threshold_table(table, out)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
