"""Versioned per-precision threshold tables the run profiles load.

The seed reproduction's fixed detection/matching thresholds (ShiftEx's
consolidation cosine ``tau`` and reuse ``epsilon_scale``, Fielding's
re-cluster JSD, FedDrift's loss ``delta``, the drift monitor's severity)
were tuned at float64.  Rather than freezing float64 forever, each
parameter precision gets a *threshold table*: a checked-in JSON artifact
under ``threshold_tables/`` emitted by :mod:`repro.detection.recalibrate`,
which re-derives every threshold on seeded calibration workloads with a
documented margin rule.  ``load_threshold_table(precision)`` is what the
runner calls for every run; strategies resolve their ``None``-defaulted
threshold knobs through :meth:`StrategyContext.threshold`, so an explicit
config value always bypasses the table.

The float64 table carries the historical seed values with zero margins —
loading it changes nothing, which is what keeps the float64 legacy path
bit-for-bit identical to the eager seed run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

TABLE_DIR = Path(__file__).parent / "threshold_tables"

# The seed reproduction's historical float64 threshold values; the fallback
# when a precision has no committed table (and the bases every
# recalibration starts from).
BASE_THRESHOLDS: dict[str, float] = {
    "shiftex.tau": 0.99,
    "shiftex.epsilon_scale": 1.25,
    "fielding.recluster_jsd": 0.15,
    "feddrift.delta": 0.5,
    "drift_monitor.severity": 3.0,
}


@dataclass(frozen=True)
class ThresholdTable:
    """One precision's recalibrated thresholds (see module docstring).

    ``thresholds`` maps a threshold key to an entry dict holding at least
    ``value`` (what runs use) plus provenance: the float64 ``base``, the
    applied ``margin`` and the measured ``statistic_discrepancy`` that
    produced it.  ``reference`` records the run-calibrated quantities
    (delta_cov / delta_label / gamma / epsilon_base) observed per
    calibration workload at this precision — pins for the acceptance test,
    not values runs load (those stay self-calibrated per run).
    """

    precision: str
    version: int
    margin_rule: str
    thresholds: dict[str, dict]
    reference: dict[str, dict] = field(default_factory=dict)
    workloads: tuple[str, ...] = ()

    def value(self, key: str, default: float | None = None) -> float:
        entry = self.thresholds.get(key)
        if entry is None:
            if default is None:
                raise KeyError(f"threshold table has no entry '{key}'")
            return float(default)
        return float(entry["value"])

    def to_dict(self) -> dict:
        return {
            "precision": self.precision,
            "version": self.version,
            "margin_rule": self.margin_rule,
            "workloads": list(self.workloads),
            "thresholds": self.thresholds,
            "reference": self.reference,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ThresholdTable":
        return cls(
            precision=str(data["precision"]),
            version=int(data["version"]),
            margin_rule=str(data["margin_rule"]),
            thresholds=dict(data["thresholds"]),
            reference=dict(data.get("reference", {})),
            workloads=tuple(data.get("workloads", ())),
        )


def table_path(precision) -> Path:
    """Where the committed table for a parameter precision lives."""
    name = getattr(precision, "params", precision)
    return TABLE_DIR / f"{name}.json"


def save_threshold_table(table: ThresholdTable, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(table.to_dict(), indent=2, sort_keys=True)
                    + "\n")
    return path


def load_threshold_table(precision) -> ThresholdTable | None:
    """The committed table for a run's parameter precision (None if absent).

    ``precision`` may be a :class:`~repro.utils.precision.PrecisionPlan`, a
    dtype name string, or anything with a ``params`` attribute.  A missing
    table is not an error: strategies fall back to the historical
    float64-tuned values in :data:`BASE_THRESHOLDS`.
    """
    path = table_path(precision)
    if not path.exists():
        return None
    return ThresholdTable.from_dict(json.loads(path.read_text()))
