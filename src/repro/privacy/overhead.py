"""TEE overhead model.

The paper reports that enclaves add modest overhead ("e.g., 5% for AMD
SEV") from enclave transitions and memory encryption.  The model charges a
multiplicative compute tax plus a per-call transition cost, so experiments
can report projected secure-mode latencies without hardware.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TeeOverheadModel:
    """Projects plain-mode costs into enclave-mode costs."""

    compute_overhead: float = 0.05  # fractional slowdown (5% for AMD SEV)
    transition_cost_ms: float = 0.02  # enclave entry/exit cost per call
    sealing_bandwidth_mb_s: float = 400.0  # encryption throughput

    def __post_init__(self) -> None:
        if self.compute_overhead < 0:
            raise ValueError("compute_overhead must be non-negative")
        if self.transition_cost_ms < 0:
            raise ValueError("transition_cost_ms must be non-negative")
        if self.sealing_bandwidth_mb_s <= 0:
            raise ValueError("sealing_bandwidth_mb_s must be positive")

    def secure_compute_ms(self, plain_ms: float, num_calls: int = 1) -> float:
        """Projected latency of a computation when run inside the enclave."""
        if plain_ms < 0 or num_calls < 0:
            raise ValueError("latency and call count must be non-negative")
        return plain_ms * (1.0 + self.compute_overhead) + num_calls * self.transition_cost_ms

    def sealing_ms(self, payload_bytes: int) -> float:
        """Time to seal/unseal a payload of the given size."""
        if payload_bytes < 0:
            raise ValueError("payload size must be non-negative")
        return (payload_bytes / 1e6) / self.sealing_bandwidth_mb_s * 1000.0

    def window_overhead_ms(self, detection_ms: float, num_parties: int,
                           payload_bytes_per_party: int) -> float:
        """Total extra latency TEE mode adds to one detection window."""
        sealing = num_parties * self.sealing_ms(payload_bytes_per_party) * 2
        compute_tax = detection_ms * self.compute_overhead
        transitions = num_parties * self.transition_cost_ms
        return sealing + compute_tax + transitions


def sealed_payload_bytes(num_floats: int, precision=None) -> int:
    """Wire bytes of a sealed payload of ``num_floats`` float elements.

    Routed through
    :meth:`~repro.federation.accounting.CommunicationLedger.from_precision`
    so the element width follows the run's parameter precision — a float32
    plane's privacy overheads are half its float64 twin's, exactly, instead
    of being over-counted by a hardcoded 8 bytes per element.
    """
    if num_floats < 0:
        raise ValueError("payload element count must be non-negative")
    from repro.federation.accounting import CommunicationLedger

    ledger = CommunicationLedger.from_precision(precision)
    return int(num_floats) * ledger.bytes_per_float
