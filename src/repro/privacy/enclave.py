"""Software enclave emulation: sealing, attestation, measured execution.

The emulation preserves the trust boundary of the paper's TEE design:

* parties *seal* payloads to the enclave's public identity — the hosting
  aggregator process can carry sealed payloads but cannot read them
  (enforced here by XOR-keystream encryption with a key only the enclave
  object holds; an emulation of confidentiality, not production crypto);
* the enclave exposes an *attestation report* — a digest of its identity
  and the registered computation code names — that parties verify before
  sealing anything;
* computations run *inside* the enclave over unsealed inputs and only
  declared outputs leave.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Callable

import numpy as np


class AttestationError(RuntimeError):
    """Raised when an attestation report fails verification."""


@dataclass(frozen=True)
class SealedPayload:
    """An encrypted payload only the target enclave can open."""

    enclave_id: str
    nonce: bytes
    ciphertext: bytes
    shape: tuple[int, ...]
    dtype: str
    mac: bytes


@dataclass(frozen=True)
class EnclaveReport:
    """Attestation evidence: identity plus measurement of loaded code."""

    enclave_id: str
    measurement: str
    computations: tuple[str, ...]


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """Deterministic keystream from SHA-256 in counter mode."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out.extend(hashlib.sha256(key + nonce + counter.to_bytes(8, "little")).digest())
        counter += 1
    return bytes(out[:length])


def seal_for_enclave(array: np.ndarray, enclave: "SoftwareEnclave",
                     rng: np.random.Generator) -> SealedPayload:
    """Encrypt an array so only ``enclave`` can recover it.

    Callers must have verified the enclave's attestation report first; this
    helper checks the measurement to model that discipline.
    """
    report = enclave.attestation_report()
    expected = SoftwareEnclave.expected_measurement(report.enclave_id,
                                                    report.computations)
    if report.measurement != expected:
        raise AttestationError("enclave measurement mismatch; refusing to seal")
    arr = np.ascontiguousarray(array)
    raw = arr.tobytes()
    nonce = rng.bytes(16)
    stream = _keystream(enclave._sealing_key, nonce, len(raw))
    ciphertext = bytes(a ^ b for a, b in zip(raw, stream))
    mac = hmac.new(enclave._sealing_key, nonce + ciphertext, hashlib.sha256).digest()
    return SealedPayload(
        enclave_id=enclave.enclave_id,
        nonce=nonce,
        ciphertext=ciphertext,
        shape=tuple(arr.shape),
        dtype=str(arr.dtype),
        mac=mac,
    )


class SoftwareEnclave:
    """Emulated TEE hosting registered computations over sealed inputs."""

    def __init__(self, enclave_id: str, seed: int = 0) -> None:
        if not enclave_id:
            raise ValueError("enclave_id must be non-empty")
        self.enclave_id = enclave_id
        self._sealing_key = hashlib.sha256(
            f"enclave-sealing-key:{enclave_id}:{seed}".encode()
        ).digest()
        self._computations: dict[str, Callable] = {}
        self.executions = 0

    # ------------------------------------------------------------------ attestation

    @staticmethod
    def expected_measurement(enclave_id: str, computations: tuple[str, ...]) -> str:
        blob = enclave_id + "|" + ",".join(sorted(computations))
        return hashlib.sha256(blob.encode()).hexdigest()

    def attestation_report(self) -> EnclaveReport:
        computations = tuple(sorted(self._computations))
        return EnclaveReport(
            enclave_id=self.enclave_id,
            measurement=self.expected_measurement(self.enclave_id, computations),
            computations=computations,
        )

    # ------------------------------------------------------------------ computation

    def register(self, name: str, fn: Callable) -> None:
        """Load a computation into the enclave (changes its measurement)."""
        if name in self._computations:
            raise ValueError(f"computation '{name}' already registered")
        self._computations[name] = fn

    def unseal(self, payload: SealedPayload) -> np.ndarray:
        """Decrypt a sealed payload (enclave-internal operation)."""
        if payload.enclave_id != self.enclave_id:
            raise AttestationError("payload sealed for a different enclave")
        mac = hmac.new(self._sealing_key, payload.nonce + payload.ciphertext,
                       hashlib.sha256).digest()
        if not hmac.compare_digest(mac, payload.mac):
            raise AttestationError("payload integrity check failed")
        stream = _keystream(self._sealing_key, payload.nonce, len(payload.ciphertext))
        raw = bytes(a ^ b for a, b in zip(payload.ciphertext, stream))
        return np.frombuffer(raw, dtype=payload.dtype).reshape(payload.shape).copy()

    def execute(self, name: str, *sealed_inputs: SealedPayload, **kwargs):
        """Run a registered computation over sealed inputs, return its output.

        Only the computation's return value crosses the enclave boundary.
        """
        if name not in self._computations:
            raise KeyError(f"unknown enclave computation '{name}'")
        arrays = [self.unseal(p) for p in sealed_inputs]
        self.executions += 1
        return self._computations[name](*arrays, **kwargs)
