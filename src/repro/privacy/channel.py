"""Secure reporting channel: party statistics -> enclave-resident detection.

Wires Algorithm 1's transmit set through the enclave: parties seal their
embedding profiles; MMD scoring against a previous sealed profile happens
inside the enclave; the aggregator process only ever observes scalar scores
(which is also all it needs for Algorithm 2's thresholding).
"""

from __future__ import annotations

import numpy as np

from repro.detection.mmd import class_conditional_mmd, mmd
from repro.privacy.enclave import SealedPayload, SoftwareEnclave, seal_for_enclave


class SecureReportChannel:
    """Per-federation channel for enclave-resident shift detection."""

    def __init__(self, enclave: SoftwareEnclave | None = None, seed: int = 0) -> None:
        self.enclave = enclave if enclave is not None else SoftwareEnclave(
            "shiftex-detection", seed=seed
        )
        if "mmd" not in self.enclave.attestation_report().computations:
            self.enclave.register("mmd", self._enclave_mmd)
            self.enclave.register("cc_mmd", self._enclave_cc_mmd)
            self.enclave.register("centroid", self._enclave_centroid)
        self._profiles: dict[int, tuple[SealedPayload, SealedPayload]] = {}

    # Computations that live inside the enclave -------------------------------

    @staticmethod
    def _enclave_mmd(current: np.ndarray, previous: np.ndarray,
                     gamma: float | None = None) -> float:
        return mmd(current, previous, gamma)

    @staticmethod
    def _enclave_cc_mmd(current: np.ndarray, current_labels: np.ndarray,
                        previous: np.ndarray, previous_labels: np.ndarray,
                        gamma: float | None = None) -> float:
        return class_conditional_mmd(current, current_labels,
                                     previous, previous_labels, gamma)

    @staticmethod
    def _enclave_centroid(embeddings: np.ndarray) -> np.ndarray:
        return embeddings.mean(axis=0)

    # Party-facing API ---------------------------------------------------------

    def submit_profile(self, party_id: int, embeddings: np.ndarray,
                       labels: np.ndarray, rng: np.random.Generator,
                       gamma: float | None = None) -> float | None:
        """Seal a party's window profile; return the enclave-computed delta.

        Returns ``None`` for the party's first submission (no previous
        profile), matching Algorithm 1's first-window behaviour.
        """
        sealed_e = seal_for_enclave(np.asarray(embeddings, dtype=np.float64),
                                    self.enclave, rng)
        sealed_y = seal_for_enclave(np.asarray(labels, dtype=np.int64),
                                    self.enclave, rng)
        previous = self._profiles.get(party_id)
        self._profiles[party_id] = (sealed_e, sealed_y)
        if previous is None:
            return None
        prev_e, prev_y = previous
        return float(self.enclave.execute(
            "cc_mmd", sealed_e, sealed_y, prev_e, prev_y, gamma=gamma
        ))

    def profile_centroid(self, party_id: int) -> np.ndarray:
        """Centroid of a party's sealed profile, computed in-enclave."""
        if party_id not in self._profiles:
            raise KeyError(f"no profile for party {party_id}")
        sealed_e, _ = self._profiles[party_id]
        return self.enclave.execute("centroid", sealed_e)
