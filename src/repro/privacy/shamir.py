"""Shamir t-of-n secret sharing over GF(2^61 - 1).

Bonawitz-style dropout recovery needs each party's mask seeds to survive
the party itself: before a round starts, every party splits its secrets
into ``n`` shares of which any ``t`` reconstruct the value and any
``t - 1`` reveal nothing.  The field is the Mersenne prime 2^61 - 1 —
large enough to hold the 61-bit seed digests the aggregation session
shares, small enough that every share fits one machine word and all the
polynomial arithmetic stays exact in Python ints.

The polynomial is the textbook construction: ``f(x) = secret + a_1 x +
... + a_{t-1} x^{t-1}`` with uniformly random coefficients, shares are
``(x, f(x))`` for ``x = 1..n``, and reconstruction is Lagrange
interpolation at ``x = 0`` using Fermat inverses (the field is prime, so
``pow(v, PRIME - 2, PRIME)`` inverts any nonzero ``v``).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

# Mersenne prime 2^61 - 1: the share field.  Secrets are 61-bit words.
PRIME = (1 << 61) - 1


def _evaluate_poly(coefficients: Sequence[int], x: int) -> int:
    """Evaluate ``sum(c_k * x**k)`` mod PRIME via Horner's rule."""
    acc = 0
    for coefficient in reversed(coefficients):
        acc = (acc * x + coefficient) % PRIME
    return acc


def split_secret(secret: int, num_shares: int, threshold: int,
                 rng: np.random.Generator) -> list[tuple[int, int]]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of
    which reconstruct it.

    Returns ``(x, y)`` pairs with ``x = 1..num_shares``.  The blinding
    coefficients come from ``rng`` so a seeded generator yields a
    reproducible sharing (the determinism contract of the whole repo).
    """
    secret = int(secret)
    if not 0 <= secret < PRIME:
        raise ValueError(
            f"secret {secret} is outside the share field [0, 2^61 - 1)")
    num_shares = int(num_shares)
    threshold = int(threshold)
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1 (got {threshold})")
    if num_shares < threshold:
        raise ValueError(
            f"cannot split into {num_shares} shares with threshold "
            f"{threshold}: any t-of-n sharing needs n >= t")
    if num_shares >= PRIME:
        raise ValueError(f"num_shares {num_shares} exceeds the field size")
    coefficients = [secret] + [
        int(rng.integers(PRIME)) for _ in range(threshold - 1)]
    return [(x, _evaluate_poly(coefficients, x))
            for x in range(1, num_shares + 1)]


def reconstruct_secret(shares: Iterable[tuple[int, int]]) -> int:
    """Recover the secret from ``(x, y)`` shares by Lagrange interpolation
    at ``x = 0``.

    The caller is responsible for passing at least ``threshold`` shares;
    with fewer, interpolation silently yields a wrong value — which is why
    :class:`~repro.privacy.secure_aggregation.SecureAggregationSession`
    gates reconstruction on the resolved threshold *before* calling here.
    """
    shares = list(shares)
    if not shares:
        raise ValueError("cannot reconstruct a secret from zero shares")
    xs = [int(x) for x, _ in shares]
    ys = [int(y) % PRIME for _, y in shares]
    if any(not 0 < x < PRIME for x in xs):
        raise ValueError(f"share x-coordinates must lie in (0, PRIME); "
                         f"got {sorted(set(xs))[:8]}")
    if len(set(xs)) != len(xs):
        raise ValueError(f"duplicate share x-coordinates: {sorted(xs)}")
    total = 0
    for i, (x_i, y_i) in enumerate(zip(xs, ys)):
        numerator = 1
        denominator = 1
        for j, x_j in enumerate(xs):
            if j == i:
                continue
            numerator = (numerator * x_j) % PRIME
            denominator = (denominator * (x_j - x_i)) % PRIME
        total = (total + y_i * numerator
                 * pow(denominator, PRIME - 2, PRIME)) % PRIME
    return total


__all__ = ["PRIME", "split_secret", "reconstruct_secret"]
