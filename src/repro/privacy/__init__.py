"""Privacy substrate: TEE emulation and the secure reporting channel.

Section 5.3 of the paper augments ShiftEx with Trusted Execution
Environments (Intel SGX / AMD SEV): parties encrypt their embeddings into an
enclave where drift detection, clustering and expert updates run without
exposing statistics to the (untrusted) aggregator process, at a ~5 %
compute overhead.

Real enclaves are hardware; this package emulates the *dataflow and
accounting*: sealed payloads that only the enclave can open, an attestation
handshake, an enclave that executes registered computations over sealed
inputs, and an overhead model charging the documented enclave tax.  The
ShiftEx pipeline can be run with or without the enclave (it is optional in
the paper as well).
"""

from repro.privacy.enclave import (
    AttestationError,
    EnclaveReport,
    SealedPayload,
    SoftwareEnclave,
    seal_for_enclave,
)
from repro.privacy.channel import SecureReportChannel
from repro.privacy.overhead import TeeOverheadModel, sealed_payload_bytes
from repro.privacy.plan import PrivacyPlan
from repro.privacy.sealed_scoring import ScoreSeal
from repro.privacy.secure_aggregation import (
    SHARE_BYTES,
    IncompleteSubmissionError,
    MaskingSpec,
    SecureAggregationSession,
    mask_vector,
    pairwise_mask,
    resolve_masking,
    seal_bits,
    self_seal_bits,
)
from repro.privacy.shamir import PRIME, reconstruct_secret, split_secret

__all__ = [
    "AttestationError",
    "EnclaveReport",
    "SealedPayload",
    "SoftwareEnclave",
    "seal_for_enclave",
    "SecureReportChannel",
    "TeeOverheadModel",
    "sealed_payload_bytes",
    "PrivacyPlan",
    "ScoreSeal",
    "SHARE_BYTES",
    "IncompleteSubmissionError",
    "MaskingSpec",
    "SecureAggregationSession",
    "mask_vector",
    "pairwise_mask",
    "resolve_masking",
    "seal_bits",
    "self_seal_bits",
    "PRIME",
    "reconstruct_secret",
    "split_secret",
]
