"""Privacy substrate: TEE emulation and the secure reporting channel.

Section 5.3 of the paper augments ShiftEx with Trusted Execution
Environments (Intel SGX / AMD SEV): parties encrypt their embeddings into an
enclave where drift detection, clustering and expert updates run without
exposing statistics to the (untrusted) aggregator process, at a ~5 %
compute overhead.

Real enclaves are hardware; this package emulates the *dataflow and
accounting*: sealed payloads that only the enclave can open, an attestation
handshake, an enclave that executes registered computations over sealed
inputs, and an overhead model charging the documented enclave tax.  The
ShiftEx pipeline can be run with or without the enclave (it is optional in
the paper as well).
"""

from repro.privacy.enclave import (
    AttestationError,
    EnclaveReport,
    SealedPayload,
    SoftwareEnclave,
    seal_for_enclave,
)
from repro.privacy.channel import SecureReportChannel
from repro.privacy.overhead import TeeOverheadModel
from repro.privacy.secure_aggregation import (
    IncompleteSubmissionError,
    SecureAggregationSession,
    mask_vector,
    pairwise_mask,
    seal_bits,
    self_seal_bits,
)

__all__ = [
    "AttestationError",
    "EnclaveReport",
    "SealedPayload",
    "SoftwareEnclave",
    "seal_for_enclave",
    "SecureReportChannel",
    "TeeOverheadModel",
    "IncompleteSubmissionError",
    "SecureAggregationSession",
    "mask_vector",
    "pairwise_mask",
    "seal_bits",
    "self_seal_bits",
]
