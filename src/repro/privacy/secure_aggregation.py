"""Secure aggregation via pairwise masking (Bonawitz et al., 2017 — simplified).

The paper's background (Section 2) lists secure aggregation among the
standard FL defenses; ShiftEx's expert updates can be aggregated under it so
the server only learns the *sum* of cohort updates, never an individual
party's parameters.

Protocol shape implemented here (the honest-but-curious core, without
dropout-recovery shares):

1. every ordered pair of parties ``(i, j)``, ``i < j``, derives a shared
   mask ``m_ij`` from a common seed (stand-in for a Diffie–Hellman agreed
   key);
2. party ``i`` submits ``x_i + sum_{j>i} m_ij - sum_{j<i} m_ji``;
3. the masks cancel pairwise in the sum, so the aggregate equals
   ``sum_i x_i`` exactly while each submission is marginally random.

``SecureAggregationSession`` coordinates one aggregation round and refuses
to reveal anything until every registered party has submitted.
"""

from __future__ import annotations

import numpy as np

from repro.utils.params import Params
from repro.utils.rng import spawn_rng


class IncompleteSubmissionError(RuntimeError):
    """Raised when the aggregate is requested before all parties submitted."""


def pairwise_mask(shared_seed: int, party_a: int, party_b: int,
                  sizes: list[tuple[int, ...]]) -> Params:
    """The mask party ``min(a,b)`` ADDS and party ``max(a,b)`` SUBTRACTS."""
    low, high = sorted((party_a, party_b))
    rng = spawn_rng(shared_seed, "pairwise-mask", low, high)
    return [rng.normal(size=shape) for shape in sizes]


class SecureAggregationSession:
    """One masked-sum aggregation round over a fixed cohort."""

    def __init__(self, cohort: list[int], param_shapes: list[tuple[int, ...]],
                 shared_seed: int = 0) -> None:
        if len(set(cohort)) != len(cohort) or not cohort:
            raise ValueError("cohort must be a non-empty list of distinct ids")
        self.cohort = sorted(cohort)
        self.param_shapes = [tuple(s) for s in param_shapes]
        self.shared_seed = shared_seed
        self._masked: dict[int, Params] = {}
        self._weights: dict[int, float] = {}

    # ------------------------------------------------------------------ party side

    def mask_update(self, party_id: int, update: Params) -> Params:
        """Apply the party's net pairwise mask to its update (party-side op)."""
        if party_id not in self.cohort:
            raise KeyError(f"party {party_id} not in this session's cohort")
        if [tuple(p.shape) for p in update] != self.param_shapes:
            raise ValueError("update shapes do not match the session")
        masked = [p.copy() for p in update]
        for other in self.cohort:
            if other == party_id:
                continue
            mask = pairwise_mask(self.shared_seed, party_id, other,
                                 self.param_shapes)
            sign = 1.0 if party_id < other else -1.0
            for m_dst, m_src in zip(masked, mask):
                m_dst += sign * m_src
        return masked

    def submit(self, party_id: int, update: Params, weight: float = 1.0) -> None:
        """Mask and hand over one party's update."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        if party_id in self._masked:
            raise ValueError(f"party {party_id} already submitted")
        self._masked[party_id] = self.mask_update(party_id, update)
        self._weights[party_id] = float(weight)

    # ------------------------------------------------------------------ server side

    @property
    def missing(self) -> list[int]:
        return [p for p in self.cohort if p not in self._masked]

    def aggregate(self) -> Params:
        """Weighted mean of the cohort's updates; masks cancel in the sum.

        Weighting happens party-side in real deployments (parties scale their
        update before masking); here every submission carries weight 1 in the
        masked sum and the weighted mean requires uniform weights, or callers
        pre-scale updates themselves.
        """
        if self.missing:
            raise IncompleteSubmissionError(
                f"waiting for parties {self.missing}; masked updates are "
                "meaningless individually"
            )
        total = [np.zeros(shape) for shape in self.param_shapes]
        for masked in self._masked.values():
            for t, m in zip(total, masked):
                t += m
        n = len(self.cohort)
        return [t / n for t in total]

    def submission_is_masked(self, party_id: int, original: Params,
                             tolerance: float = 1e-9) -> bool:
        """True when the stored submission differs from the raw update
        (sanity check used in tests: the server never holds plaintext)."""
        if party_id not in self._masked:
            raise KeyError(f"party {party_id} has not submitted")
        if len(self.cohort) == 1:
            return False  # a singleton cohort cannot hide anything
        stored = self._masked[party_id]
        return any(
            float(np.max(np.abs(s - o))) > tolerance
            for s, o in zip(stored, original)
        )
