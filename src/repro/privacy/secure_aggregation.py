"""Secure aggregation via pairwise masking (Bonawitz et al., 2017 — simplified).

The paper's background (Section 2) lists secure aggregation among the
standard FL defenses; ShiftEx's expert updates can be aggregated under it so
the server only learns the *sum* of cohort updates, never an individual
party's parameters.

Protocol shape implemented here (the honest-but-curious core):

1. every ordered pair of parties ``(i, j)``, ``i < j``, derives a shared
   mask from a common seed (stand-in for a Diffie–Hellman agreed key);
2. party ``i`` submits ``x_i + sum_{j>i} m_ij - sum_{j<i} m_ji``;
3. the masks cancel pairwise in the sum, so the aggregate equals
   ``sum_i x_i`` while each submission is marginally random.

Bank-resident rewrite
---------------------
Everything operates on the flat parameter plane: a pairwise mask is **one
RNG stream producing a single flat ``(dim,)`` vector** (:func:`mask_vector`),
a party's net mask is one vector accumulation over its pairs, and
submissions live as rows of a :class:`~repro.utils.params.ParamBank` so the
masked sum is the existing ``weighted_combine`` kernel.  The per-tensor
``Params`` API (:func:`pairwise_mask`, :meth:`SecureAggregationSession.submit`)
is a thin facade over the flat core; its mask values are bitwise-identical
to the historical per-tensor draws because numpy generators fill arrays
sequentially, so ``normal(size=dim)`` equals the concatenation of
per-shape draws from the same stream.

Two mask domains
----------------
* **Float additive masks** (the legacy facade): Gaussian flat vectors added
  to the update.  Cancellation in the aggregate is exact only up to float
  rounding (~1e-12 relative), which is why the facade's masked mean is
  pinned to FedAvg with a tolerance.
* **Bit-domain seals** (the federation path): the row's raw bit pattern,
  viewed as unsigned integers, is translated by a uniform random vector in
  the additive group Z_{2^64} (Z_{2^32} for float32 banks) —
  :meth:`SecureAggregationSession.seal_row`.  This is the finite-group
  masking of the real protocol: a sealed row is *uniformly* distributed
  (perfect marginal secrecy, unlike Gaussian float masks), and unsealing is
  modular subtraction, which restores the original bits **exactly**.  The
  masked federation path therefore reproduces the unmasked aggregate bit
  for bit at any precision.

Session lifecycle through the async buffer
------------------------------------------
One session covers one dispatch cohort.  Parties seal their bank rows at
training time (:meth:`seal_row`); the rows then sit sealed in the
:class:`~repro.federation.async_engine.AsyncRoundBuffer` for as long as the
participation mode buffers them.  When an aggregation fires, the engine
runs the recovery phase — :meth:`combine_rows` unseals exactly the rows
entering the aggregate (emulating the protocol's threshold mask-share
reconstruction for partial cohorts), combines them with the bank kernel,
and scrubs the rows before they are released.  Reports dropped at a window
boundary are discarded *still sealed*: their masks are never reconstructed,
so a flushed buffer leaks no residue.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.privacy.shamir import PRIME, reconstruct_secret, split_secret
from repro.utils.params import (
    ParamBank,
    ParamSpec,
    Params,
    flatten_params,
    resolve_dtype,
)
from repro.utils.rng import spawn_rng

# One Shamir share on the wire: the (x, y) pair as two 8-byte words.
SHARE_BYTES = 16


class IncompleteSubmissionError(RuntimeError):
    """Raised when the aggregate is requested before all parties submitted."""


@dataclass(frozen=True)
class MaskingSpec:
    """Runtime masking parameters handed to the round paths.

    The historical ``secure=<seed>`` int survives as shorthand for
    ``MaskingSpec(seed)`` — no threshold, no ledger, bitwise the PR 5
    behavior.  ``threshold`` switches dropout recovery from the
    seed-derived shortcut to real Shamir ``t``-of-``n`` reconstruction
    (``int`` or ``"majority"``, resolved per cohort); ``ledger`` is the
    run's :class:`~repro.federation.accounting.CommunicationLedger`, which
    meters the share traffic under the ``secure_agg`` channel.
    """

    seed: int
    threshold: int | str | None = None
    ledger: object = None


def resolve_masking(secure: "int | MaskingSpec") -> MaskingSpec:
    """Coerce the round paths' ``secure`` argument (int seed or spec)."""
    if isinstance(secure, MaskingSpec):
        return secure
    return MaskingSpec(seed=int(secure))


def _resolve_threshold(threshold: "int | str | None", n: int) -> int | None:
    """The effective ``t`` for a cohort of ``n``: clamp ints into [1, n].

    ShiftEx dispatches per-expert cohorts that can be as small as one
    party; an experiment-level ``threshold=3`` must still seal those
    rounds, so the threshold degrades to the cohort size instead of
    refusing the round.
    """
    if threshold is None:
        return None
    if threshold == "majority":
        return max(1, int(n) // 2 + 1)
    return max(1, min(int(threshold), int(n)))


def _uint_dtype(dtype: np.dtype) -> np.dtype:
    """The unsigned integer dtype matching a float dtype's width."""
    dtype = np.dtype(dtype)
    if dtype.itemsize == 8:
        return np.dtype(np.uint64)
    if dtype.itemsize == 4:
        return np.dtype(np.uint32)
    raise ValueError(f"no seal domain for dtype {dtype}")


def mask_vector(shared_seed: int, party_a: int, party_b: int, dim: int,
                context: tuple = ()) -> np.ndarray:
    """The flat float mask party ``min(a,b)`` ADDS and ``max(a,b)`` SUBTRACTS.

    One RNG stream per (unordered) pair produces one ``(dim,)`` vector;
    ``context`` namespaces the stream (e.g. per round or per engine stream)
    so reusing party ids across rounds never reuses masks.
    """
    low, high = sorted((party_a, party_b))
    rng = spawn_rng(shared_seed, "pairwise-mask", *context, low, high)
    return rng.normal(size=dim)


def seal_bits(shared_seed: int, party_a: int, party_b: int, dim: int,
              dtype=None, context: tuple = ()) -> np.ndarray:
    """The pairwise bit-domain mask: uniform words in Z_{2^w}.

    ``dtype`` is the *float* dtype of the sealed rows; the mask lives in the
    unsigned integer type of the same width.  Like :func:`mask_vector`, the
    stream depends only on the unordered pair (plus ``context``).
    """
    low, high = sorted((party_a, party_b))
    udt = _uint_dtype(resolve_dtype(dtype))
    rng = spawn_rng(shared_seed, "seal-mask", *context, low, high)
    return rng.integers(0, 2 ** (8 * udt.itemsize), size=dim, dtype=udt)


def self_seal_bits(shared_seed: int, party_id: int, dim: int,
                   dtype=None, context: tuple = ()) -> np.ndarray:
    """A party's personal bit-domain mask (the protocol's ``b_i``).

    Bonawitz et al. double-mask: on top of the pairwise masks every party
    adds a personal mask whose shares the cohort reveals for *surviving*
    parties at recovery.  Here it guarantees a sealed row is uniformly
    random even when the dispatch cohort degenerates to one party — the
    case where pairwise masks alone would leave the row plaintext.
    """
    udt = _uint_dtype(resolve_dtype(dtype))
    rng = spawn_rng(shared_seed, "seal-self", *context, party_id)
    return rng.integers(0, 2 ** (8 * udt.itemsize), size=dim, dtype=udt)


def pairwise_mask(shared_seed: int, party_a: int, party_b: int,
                  sizes: list[tuple[int, ...]]) -> Params:
    """Per-tensor facade over :func:`mask_vector` (bitwise-identical draws)."""
    spec = ParamSpec(tuple(tuple(s) for s in sizes))
    return spec.view(mask_vector(shared_seed, party_a, party_b,
                                 spec.total_size))


class SecureAggregationSession:
    """One masked-sum aggregation round over a fixed cohort, bank-resident.

    The session serves two callers:

    * the **facade path** (:meth:`submit` / :meth:`aggregate`): per-tensor
      ``Params`` updates are flattened, float-masked, and parked as rows of
      an internal :class:`~repro.utils.params.ParamBank`; the aggregate is
      one ``weighted_combine`` over the masked rows (masks cancel in the
      sum up to float rounding);
    * the **federation path** (:meth:`seal_row` / :meth:`combine_rows`):
      rows owned by someone else's bank (a round bank, an async stream
      buffer, a :class:`~repro.utils.params.ShardedParamBank` shard) are
      sealed *in place* in the exact bit domain, and unsealed only inside
      :meth:`combine_rows` when their aggregation fires.

    ``context`` namespaces the mask streams (round tag, engine stream) so
    distinct rounds of one run never share masks.
    """

    def __init__(self, cohort: list[int],
                 param_shapes: "ParamSpec | list[tuple[int, ...]]",
                 shared_seed: int = 0, dtype=None,
                 context: tuple = (),
                 threshold: "int | str | None" = None,
                 ledger: object = None) -> None:
        if len(set(cohort)) != len(cohort) or not cohort:
            raise ValueError("cohort must be a non-empty list of distinct ids")
        if isinstance(param_shapes, ParamSpec):
            self.spec = param_shapes
        else:
            self.spec = ParamSpec(tuple(tuple(s) for s in param_shapes))
        self.cohort = sorted(cohort)
        self.param_shapes = list(self.spec.shapes)
        self.shared_seed = shared_seed
        self.context = tuple(context)
        self.dtype = resolve_dtype(dtype)
        self.threshold = _resolve_threshold(threshold, len(self.cohort))
        self.ledger = ledger
        self._facade_bank: ParamBank | None = None  # lazy: facade path only
        self._rows: dict[int, int] = {}
        self._weights: dict[int, float] = {}
        self._sealed: set[int] = set()
        # (owner, word key) -> {holder: (x, y)}: the share matrix the server
        # collects in the distribution round (threshold mode only).
        self._shares: dict[tuple, dict[int, tuple[int, int]]] = {}
        self._recovered: set[int] = set()
        if self.threshold is not None:
            self._distribute_shares()

    @property
    def _bank(self) -> ParamBank:
        """The facade path's submission storage, allocated on first use.

        Federation-path sessions (seal/unseal over someone else's bank)
        never touch it, so constructing a session stays allocation-free.
        """
        if self._facade_bank is None:
            self._facade_bank = ParamBank(self.spec, dtype=self.dtype,
                                          capacity=len(self.cohort))
        return self._facade_bank

    # ------------------------------------------------------------------ masks

    def net_mask_vector(self, party_id: int) -> np.ndarray:
        """The net float mask a party adds before upload (one add per pair)."""
        self._check_party(party_id)
        dim = self.spec.total_size
        net = np.zeros(dim)
        for other in self.cohort:
            if other == party_id:
                continue
            sign = 1.0 if party_id < other else -1.0
            net += sign * mask_vector(self.shared_seed, party_id, other, dim,
                                      context=self.context)
        return net

    def net_seal_bits(self, party_id: int) -> np.ndarray:
        """The party's net bit-domain mask: personal mask + pair words.

        The personal (double-masking) term keeps the seal uniformly random
        for any cohort size; the pairwise terms are the ones that would
        cancel in the cohort's modular sum.
        """
        self._check_party(party_id)
        dim = self.spec.total_size
        net = self_seal_bits(self.shared_seed, party_id, dim,
                             dtype=self.dtype, context=self.context)
        for other in self.cohort:
            if other == party_id:
                continue
            bits = seal_bits(self.shared_seed, party_id, other, dim,
                             dtype=self.dtype, context=self.context)
            if party_id < other:
                net += bits
            else:
                net -= bits
        return net

    # ------------------------------------------------------ Shamir recovery

    def _secret_word(self, label: str, *ids: int) -> int:
        """One 61-bit secret word: the digest a party's mask stream commits
        to.  The word is derived from the same (seed, context, ids) tuple
        as the mask stream itself, so reconstructing it from shares proves
        the server holds enough of the cohort to re-derive that stream —
        and the masks it then derives are bit-identical to the shortcut's.
        """
        rng = spawn_rng(self.shared_seed, label, *self.context, *ids)
        return int(rng.integers(PRIME))

    def _secret_words(self, party_id: int) -> dict[tuple, int]:
        """The word bundle party ``party_id`` splits: its personal-mask
        word (Bonawitz's ``b_i``) plus one word per pairwise stream it
        shares.  Pair words are keyed by the unordered pair, so either
        endpoint's bundle recovers the seeds a dropped peer took down."""
        words = {("self", party_id):
                 self._secret_word("share-secret-self", party_id)}
        for other in self.cohort:
            if other == party_id:
                continue
            low, high = sorted((party_id, other))
            words[("pair", low, high)] = self._secret_word(
                "share-secret-pair", low, high)
        return words

    def _distribute_shares(self) -> None:
        """The share-distribution round: every party splits its word bundle
        t-of-n and sends one share to each peer (via the server, which is
        what the ledger meters — its own share never transits the wire).
        """
        n = len(self.cohort)
        transit = 0
        for owner in self.cohort:
            for key, secret in self._secret_words(owner).items():
                rng = spawn_rng(self.shared_seed, "share-split",
                                *self.context, owner, *key)
                shares = split_secret(secret, n, self.threshold, rng)
                self._shares[(owner, key)] = dict(zip(self.cohort, shares))
                transit += (n - 1) * SHARE_BYTES
        if self.ledger is not None and transit:
            self.ledger.record_wire("secure_agg", sent_bytes=transit,
                                    received_bytes=transit)

    def recover(self, party_ids: list[int],
                available: "list[int] | None" = None) -> None:
        """The reconstruction round: rebuild each party's word bundle from
        the shares held by ``available`` parties (default: the cohort —
        every cohort member sealed a row, so it is alive to answer).

        Below-threshold availability raises
        :class:`IncompleteSubmissionError` *before* anything is unsealed.
        Each reconstructed word is checked against the direct derivation —
        the protocol gate that makes a full-survival t-of-n run bitwise
        identical to the seed-derived shortcut: recovery changes *when*
        the server may derive masks, never *what* it derives.
        """
        if self.threshold is None:
            return
        pool = self.cohort if available is None else available
        holders = [p for p in self.cohort if p in set(pool)]
        if len(holders) < self.threshold:
            raise IncompleteSubmissionError(
                f"mask recovery needs {self.threshold} of "
                f"{len(self.cohort)} share holders but only "
                f"{len(holders)} are available ({holders}); refusing to "
                "reconstruct below threshold")
        quorum = holders[:self.threshold]
        pulled = 0
        for party_id in party_ids:
            if party_id in self._recovered:
                continue
            self._check_party(party_id)
            for key, expected in self._secret_words(party_id).items():
                shares = [self._shares[(party_id, key)][h] for h in quorum]
                word = reconstruct_secret(shares)
                if word != expected:
                    raise RuntimeError(
                        f"share reconstruction for party {party_id} "
                        f"word {key} produced a mismatched secret — the "
                        "share matrix is corrupt")
                pulled += len(shares) * SHARE_BYTES
            self._recovered.add(party_id)
        if self.ledger is not None and pulled:
            self.ledger.record_wire("secure_agg", sent_bytes=0,
                                    received_bytes=pulled)

    def is_recovered(self, party_id: int) -> bool:
        """True when the party's words were reconstructed (or no threshold
        is configured, in which case the shortcut needs no recovery)."""
        return self.threshold is None or party_id in self._recovered

    def _check_party(self, party_id: int) -> None:
        if party_id not in self.cohort:
            raise KeyError(f"party {party_id} not in this session's cohort")

    def _uint_view(self, row: np.ndarray) -> np.ndarray:
        row = np.asarray(row)
        if row.dtype != self.dtype:
            raise ValueError(
                f"row dtype {row.dtype} does not match the session's "
                f"{self.dtype}")
        if row.ndim != 1 or row.size != self.spec.total_size:
            raise ValueError(
                f"row of size {row.size} does not match the session spec "
                f"(dim {self.spec.total_size})")
        return row.view(_uint_dtype(self.dtype))

    # ------------------------------------------------------- federation path

    def seal_row(self, party_id: int, row: np.ndarray) -> None:
        """Seal a bank row in place: exact bit-domain masking (party-side).

        After this call the row's bytes are uniformly random to anyone
        without the pair seeds; :meth:`unseal_row` restores them exactly.
        Aggregation weights are no business of the seal: the recovery phase
        (:meth:`combine_rows`, the async engine) weights reports at fire
        time, exactly as the unmasked paths do.
        """
        self._check_party(party_id)
        if party_id in self._sealed or party_id in self._rows:
            raise ValueError(f"party {party_id} already submitted")
        view = self._uint_view(row)
        view += self.net_seal_bits(party_id)
        self._sealed.add(party_id)

    def unseal_row(self, party_id: int, row: np.ndarray) -> None:
        """Remove a sealed row's net mask in place (recovery phase).

        In threshold mode the party's mask words must be reconstructed
        first; callers that know the surviving set run :meth:`recover`
        explicitly, anyone else gets the default full-cohort quorum here.
        """
        if party_id not in self._sealed:
            raise KeyError(f"party {party_id} has no sealed row")
        if not self.is_recovered(party_id):
            self.recover([party_id])
        view = self._uint_view(row)
        view -= self.net_seal_bits(party_id)
        self._sealed.discard(party_id)

    def is_sealed(self, party_id: int) -> bool:
        return party_id in self._sealed

    def combine_rows(self, bank, weights,
                     party_rows: list[tuple[int, int]]) -> np.ndarray:
        """Masked aggregation: unseal, run the bank kernel, scrub the rows.

        ``party_rows`` pairs each contributing party with its row in
        ``bank`` (which may be sharded).  Unsealing is exact, so the result
        is bit-for-bit the unmasked ``weighted_combine`` over the same rows;
        the rows are zeroed afterwards so no unmasked update outlives the
        aggregation (callers release them right after).
        """
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (len(party_rows),):
            raise ValueError(
                f"weights shape {weights.shape} does not match "
                f"{len(party_rows)} submitted rows")
        if float(weights.sum()) <= 0:
            # weighted_combine would reject this too, but only *after* the
            # rows were unsealed — validate while everything is still masked.
            raise ValueError("weights must sum to a positive value")
        # Threshold mode: run the reconstruction round for every
        # contributing party before any row is unsealed, so a
        # below-threshold cohort fails with everything still masked.
        self.recover([pid for pid, _ in party_rows])
        unsealed: list[int] = []
        try:
            for party_id, row in party_rows:
                self.unseal_row(party_id, bank.row(row))
                unsealed.append(row)
            return bank.weighted_combine(weights,
                                         [row for _, row in party_rows])
        finally:
            # Whatever happens, no unmasked update outlives this call.
            for row in unsealed:
                bank.row(row)[...] = 0.0

    # ------------------------------------------------------------ party side

    def mask_update(self, party_id: int, update: Params) -> Params:
        """Apply the party's net pairwise mask to its update (party-side op).

        The returned list views one freshly masked flat vector; the caller's
        ``update`` is never modified.
        """
        self._check_party(party_id)
        if [tuple(p.shape) for p in update] != self.param_shapes:
            raise ValueError("update shapes do not match the session")
        flat = np.array(flatten_params(update), dtype=self.dtype, copy=True)
        flat += self.net_mask_vector(party_id)
        return self.spec.view(flat)

    def submit(self, party_id: int, update: Params,
               weight: float = 1.0) -> None:
        """Mask and hand over one party's update (lands in a bank row)."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        if party_id in self._rows or party_id in self._sealed:
            raise ValueError(f"party {party_id} already submitted")
        masked = self.mask_update(party_id, update)
        self._rows[party_id] = self._bank.alloc(masked)
        self._weights[party_id] = float(weight)

    # ------------------------------------------------------------ server side

    @property
    def _masked(self) -> dict[int, Params]:
        """Submitted (masked) updates as shaped views of the bank rows."""
        return {pid: self._bank.row_params(row)
                for pid, row in self._rows.items()}

    @property
    def missing(self) -> list[int]:
        return [p for p in self.cohort
                if p not in self._rows and p not in self._sealed]

    def aggregate(self) -> Params:
        """Uniform mean of the cohort's updates; masks cancel in the sum.

        Weighting happens party-side in real deployments (parties scale
        their update before masking), so the masked mean is only correct
        under uniform weights — mismatched weights would silently diverge
        from the unmasked FedAvg path, and are rejected instead.
        """
        if self._sealed:
            raise ValueError(
                f"parties {sorted(self._sealed)} submitted sealed bank rows "
                "(the federation path); aggregate() serves facade "
                "submissions only — their aggregation runs through "
                "combine_rows when it fires"
            )
        if self.missing:
            raise IncompleteSubmissionError(
                f"waiting for parties {self.missing}; masked updates are "
                "meaningless individually"
            )
        if len(set(self._weights.values())) > 1:
            offenders = ", ".join(
                f"party {pid}: {self._weights[pid]:g}"
                for pid in self.cohort if pid in self._weights)
            raise ValueError(
                f"masked aggregation requires uniform weights (got "
                f"{offenders}); pre-scale updates party-side instead"
            )
        rows = [self._rows[p] for p in self.cohort]
        flat = self._bank.weighted_combine(np.ones(len(rows)), rows)
        return self.spec.view(flat)

    def submission_is_masked(self, party_id: int, original: Params,
                             tolerance: float = 1e-9) -> bool:
        """True when the stored submission differs from the raw update
        (sanity check used in tests: the server never holds plaintext)."""
        if party_id not in self._rows:
            raise KeyError(f"party {party_id} has not submitted")
        if len(self.cohort) == 1:
            return False  # a singleton cohort cannot hide anything
        stored = self._bank.row_params(self._rows[party_id], writeable=False)
        return any(
            float(np.max(np.abs(s - o))) > tolerance
            for s, o in zip(stored, original)
        )
