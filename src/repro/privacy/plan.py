"""The privacy plan: one knob surface for masking, recovery, and sealing.

``secure_aggregation: bool`` grew three independent decisions in a single
flag: whether round submissions are masked at all, how dropout recovery is
protected (the Shamir ``t``-of-``n`` threshold), and whether expert
scoring runs over sealed rows.  :class:`PrivacyPlan` names each knob
separately, mirroring :class:`~repro.utils.precision.PrecisionPlan` and
``ShardPlan``:

* ``masking`` — seal round submissions in the bit domain (PR 5's
  bank-resident masking).  Off by default.
* ``threshold`` — Shamir share threshold for dropout recovery: an int, or
  ``"majority"`` for ``n // 2 + 1`` resolved per cohort.  ``None`` keeps
  the seed-derived recovery shortcut (no share traffic).  Requires
  ``masking``.
* ``sealed_scoring`` — run expert cosine/MMD scoring over sign-sealed
  rows (bitwise-identical Gram cancellation; see ARCHITECTURE.md).
* ``mask_seed`` — override the mask-stream root seed (defaults to the run
  seed, which keeps masked runs bit-identical to their unmasked twins).

The legacy boolean survives as a shorthand alias everywhere a plan is
accepted: ``secure_aggregation=True`` means ``PrivacyPlan(masking=True)``
and reproduces PR 5 runs bitwise.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import asdict, dataclass, replace

_KEYS = ("masking", "threshold", "sealed_scoring", "mask_seed")
_TRUE = {"on", "true", "yes", "1"}
_FALSE = {"off", "false", "no", "0"}


def _parse_bool(key: str, value) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return bool(value)
    text = str(value).strip().lower()
    if text in _TRUE:
        return True
    if text in _FALSE:
        return False
    raise ValueError(f"privacy knob '{key}' expects on/off "
                     f"(or true/false); got {value!r}")


@dataclass(frozen=True)
class PrivacyPlan:
    """Which privacy mechanisms a run enables (see module docstring)."""

    masking: bool = False
    threshold: int | str | None = None
    sealed_scoring: bool = False
    mask_seed: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "masking",
                           _parse_bool("masking", self.masking))
        object.__setattr__(self, "sealed_scoring",
                           _parse_bool("sealed_scoring", self.sealed_scoring))
        threshold = self.threshold
        if threshold is not None:
            if isinstance(threshold, str):
                text = threshold.strip().lower()
                if text in ("none", ""):
                    threshold = None
                elif text == "majority":
                    threshold = "majority"
                else:
                    try:
                        threshold = int(text)
                    except ValueError:
                        raise ValueError(
                            f"privacy threshold must be an int or "
                            f"'majority'; got {self.threshold!r}") from None
            else:
                threshold = int(threshold)
            if isinstance(threshold, int) and threshold < 1:
                raise ValueError(
                    f"privacy threshold must be >= 1 (got {threshold})")
            object.__setattr__(self, "threshold", threshold)
        if self.threshold is not None and not self.masking:
            raise ValueError(
                "privacy threshold (Shamir dropout recovery) requires "
                "masking=on: shares protect mask seeds, and there are no "
                "masks to recover without masking")
        if self.mask_seed is not None:
            object.__setattr__(self, "mask_seed", int(self.mask_seed))

    # ----------------------------------------------------------- resolution

    @property
    def is_active(self) -> bool:
        return self.masking or self.sealed_scoring

    def resolve_threshold(self, cohort_size: int) -> int | None:
        """The effective ``t`` for a cohort of ``cohort_size`` parties.

        ``"majority"`` resolves to ``n // 2 + 1``; an explicit int is
        clamped into ``[1, n]`` because per-expert cohorts can be tiny
        (a singleton cohort still seals, so ``t`` must not exceed ``n``).
        """
        if self.threshold is None:
            return None
        n = int(cohort_size)
        if self.threshold == "majority":
            return max(1, n // 2 + 1)
        return max(1, min(int(self.threshold), n))

    def mask_root(self, run_seed: int) -> int:
        """The mask-stream root seed: the override, else the run seed."""
        return int(run_seed if self.mask_seed is None else self.mask_seed)

    # -------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_value(cls, value) -> "PrivacyPlan":
        """Coerce a plan knob: None / bool / mapping / spec string / plan.

        * ``None`` — the all-off default plan.
        * a bool — the legacy ``secure_aggregation`` alias:
          ``True`` means ``PrivacyPlan(masking=True)``.
        * a mapping — ``{"masking": ..., "threshold": ...}``.
        * a spec string — ``"masking=on,threshold=3"`` (any key may be
          omitted); bare ``"on"``/``"off"`` toggles masking alone.
        """
        if value is None:
            return cls()
        if isinstance(value, PrivacyPlan):
            return value
        if isinstance(value, bool):
            return cls(masking=value)
        if isinstance(value, Mapping):
            unknown = set(value) - set(_KEYS)
            if unknown:
                raise ValueError(
                    f"unknown privacy keys {sorted(unknown)}; "
                    f"expected {list(_KEYS)}")
            return cls(**dict(value))
        if isinstance(value, str):
            return cls.parse(value)
        raise ValueError(f"cannot interpret privacy plan {value!r}")

    @classmethod
    def parse(cls, text: str) -> "PrivacyPlan":
        """Parse a CLI spec: ``on`` or ``masking=on,threshold=3,...``."""
        text = text.strip()
        if "=" not in text:
            # Bare on/off: the boolean alias in spec-string clothing.
            return cls(masking=_parse_bool("masking", text))
        fields: dict[str, str] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, val = item.partition("=")
            if not sep or not val.strip():
                raise ValueError(
                    f"privacy spec item '{item}' is not key=value")
            fields[key.strip()] = val.strip()
        return cls.from_value(fields)

    def with_masking(self) -> "PrivacyPlan":
        """This plan with masking forced on (the legacy-alias merge)."""
        return self if self.masking else replace(self, masking=True)

    def __str__(self) -> str:
        parts = [f"masking={'on' if self.masking else 'off'}"]
        if self.threshold is not None:
            parts.append(f"threshold={self.threshold}")
        if self.sealed_scoring:
            parts.append("sealed_scoring=on")
        if self.mask_seed is not None:
            parts.append(f"mask_seed={self.mask_seed}")
        return ",".join(parts)


__all__ = ["PrivacyPlan"]
