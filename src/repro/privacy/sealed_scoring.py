"""Sealed expert scoring: sign-sealed rows, bitwise-identical Gram products.

Consolidation and matching score experts with cosine similarity and RBF
MMD — both built entirely from inner products and row-difference squares.
Sealing every operand with one shared random ``±1`` vector ``s`` (one sign
per feature dimension) therefore cancels *inside* each scalar product:

    (s ∘ x) · (s ∘ y) = Σ_i s_i² x_i y_i = Σ_i x_i y_i = x · y

and IEEE-754 makes the cancellation exact bit for bit, not just
algebraically: multiplying a float by ``±1.0`` only toggles the sign bit,
so each term ``(s_i x_i)(s_i y_i)`` has the same bits as ``x_i y_i`` and
the summation order is unchanged.  The same holds for squared norms
(``(±a)² = a²``) and differences (``s_i a_i - s_i b_i = s_i (a_i - b_i)``),
which covers every kernel in :mod:`repro.detection.mmd` — including the
median-heuristic bandwidth — at float64 *and* float32.

A sealed row is not uniformly random like the aggregation path's
bit-domain seals (magnitudes survive; only signs are hidden), but it is
what makes sealed *scoring* possible at all: additive masks cannot cancel
in a float Gram product.  What the seal buys is that the scoring pipeline
— gathered parameter stacks, memory signatures shipped to shard workers
or the remote shard service, parked scorer snapshots — never materializes
a plaintext copy of a parameter row outside the aggregation path's
``combine_rows`` unseal window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class ScoreSeal:
    """The shared sign vector sealing one run's scoring operands.

    One seal per run (seeded from the run's mask root) serves every
    dimensionality: the ``±1`` vector for dimension ``d`` comes from its
    own namespaced stream, so parameter rows and embedding signatures get
    independent seals that are each consistent across all operands of one
    kernel call — the property the Gram cancellation needs.
    """

    seed: int
    context: tuple = ()
    _cache: dict = field(default_factory=dict, compare=False, repr=False)

    def sign_vector(self, dim: int, dtype) -> np.ndarray:
        """The ``(dim,)`` vector of exact ``±1.0`` values in ``dtype``."""
        dtype = np.dtype(dtype)
        key = (int(dim), dtype.str)
        cached = self._cache.get(key)
        if cached is None:
            rng = spawn_rng(self.seed, "score-seal", *self.context, int(dim))
            signs = rng.integers(0, 2, size=int(dim)) * 2 - 1
            cached = signs.astype(dtype)
            cached.flags.writeable = False
            self._cache[key] = cached
        return cached

    def seal(self, matrix: np.ndarray) -> np.ndarray:
        """A sealed copy of ``matrix`` (rows sealed along the last axis)."""
        matrix = np.asarray(matrix)
        return matrix * self.sign_vector(matrix.shape[-1], matrix.dtype)

    def seal_many(self, matrices) -> list[np.ndarray]:
        return [self.seal(m) for m in matrices]


__all__ = ["ScoreSeal"]
