"""FedProx (Li et al., 2020): FedAvg with a proximal local objective.

The proximal term ``(mu/2)||w - w_global||^2`` stabilizes local training on
non-IID data but the strategy still maintains one global model with no shift
detection or adaptation — the paper's canonical "brittle under shift"
baseline.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.fedavg import FedAvgStrategy
from repro.experiments.registry import register_strategy


@register_strategy("fedprox")
class FedProxStrategy(FedAvgStrategy):
    """FedAvg aggregation + proximal term in every party's local objective."""

    name = "fedprox"

    def __init__(self, prox_mu: float = 0.01) -> None:
        super().__init__()
        if prox_mu < 0:
            raise ValueError("prox_mu must be non-negative")
        self.prox_mu = prox_mu

    def _local_config(self):
        return replace(self.context.round_config.local, prox_mu=self.prox_mu)
