"""Comparative FL techniques (paper Section 6, "Comparative Techniques").

* :class:`~repro.baselines.fedavg.FedAvgStrategy` — plain FedAvg (reference).
* :class:`~repro.baselines.fedprox.FedProxStrategy` — FedAvg + proximal term;
  one global model, no shift awareness.
* :class:`~repro.baselines.oort.OortStrategy` — utility-guided participant
  selection; assumes static utility, so it underreacts to shifts.
* :class:`~repro.baselines.fielding.FieldingStrategy` — label-distribution
  clustering with per-cluster models; adapts to label drift but is blind to
  covariate shift.
* :class:`~repro.baselines.feddrift.FedDriftStrategy` — loss-pattern drift
  detection with multiple models; coarse adaptation, no explicit
  covariate/label modelling.
"""

from repro.baselines.fedavg import FedAvgStrategy
from repro.baselines.fedprox import FedProxStrategy
from repro.baselines.oort import OortStrategy
from repro.baselines.fielding import FieldingStrategy
from repro.baselines.feddrift import FedDriftStrategy

BASELINE_NAMES = ("fedavg", "fedprox", "oort", "fielding", "feddrift")


def build_baseline(name: str, **kwargs):
    """Construct a baseline strategy by name.

    Thin shim over the strategy registry (each baseline class registers
    itself with ``@register_strategy``), restricted to the paper's
    comparative techniques.
    """
    from repro.experiments.registry import build_strategy
    if name not in BASELINE_NAMES:
        raise KeyError(
            f"unknown baseline '{name}'; available: {sorted(BASELINE_NAMES)}")
    return build_strategy(name, **kwargs)


__all__ = [
    "FedAvgStrategy",
    "FedProxStrategy",
    "OortStrategy",
    "FieldingStrategy",
    "FedDriftStrategy",
    "BASELINE_NAMES",
    "build_baseline",
]
