"""FedDrift (Jothimurugesan et al., 2023): loss-clustered multi-model FL.

Server keeps a pool of models.  At each window boundary every party
evaluates the whole pool on its fresh local data; a party whose best loss is
within ``delta`` of its previous loss keeps its model, otherwise it is
flagged as drifted.  Drifted parties form one new model per window (cloned
from a fresh initialization) — the paper characterizes this as "coarse
adaptation": there is no covariate/label distinction, no regime memory, and
models are merged only when their cohorts find them interchangeable
(cross-loss within ``delta``).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.registry import register_strategy
from repro.federation.rounds import run_fl_round
from repro.federation.strategy import ContinualStrategy, StrategyContext
from repro.utils.params import Params


@register_strategy("feddrift")
class FedDriftStrategy(ContinualStrategy):
    """Multiple global models, drift detection via local loss patterns."""

    name = "feddrift"

    def __init__(self, delta: float | None = None, max_models: int = 8,
                 merge_check_parties: int = 6) -> None:
        super().__init__()
        if delta is not None and delta <= 0:
            raise ValueError("delta must be positive")
        if max_models < 1:
            raise ValueError("max_models must be at least 1")
        # None = resolve from the run precision's threshold table in setup()
        # (the historical float64 value is 0.5); explicit values win.
        self.delta = delta
        self.max_models = max_models
        self.merge_check_parties = merge_check_parties
        self._models: dict[int, Params] = {}
        self._membership: dict[int, int] = {}
        self._next_model_id = 0
        self._prev_best_loss: dict[int, float] = {}

    # ------------------------------------------------------------------ life cycle

    def setup(self, ctx: StrategyContext) -> None:
        super().setup(ctx)
        if self.delta is None:
            self.delta = ctx.threshold("feddrift.delta", 0.5)
        self._models = {0: ctx.model_factory().get_params()}
        self._next_model_id = 1
        # Survey order: the whole population eagerly, a seeded survey subset
        # under a capped pool (FedDrift keeps per-party loss baselines).
        self._membership = {pid: 0 for pid in ctx.party_ids}
        self._prev_best_loss = {}

    def end_window(self, window: int) -> None:
        """Record each party's post-training best loss as the drift baseline."""
        ctx = self.context
        for pid, party in ctx.iter_parties():
            losses = [party.loss_on(params, split="train")
                      for params in self._models.values()]
            self._prev_best_loss[pid] = float(min(losses))

    def start_window(self, window: int) -> None:
        ctx = self.context
        if window == 0:
            return
        drifted: list[int] = []
        for pid, party in ctx.iter_parties():
            losses = {mid: party.loss_on(params, split="train")
                      for mid, params in self._models.items()}
            best_mid = min(losses, key=losses.get)
            best_loss = losses[best_mid]
            reference = self._prev_best_loss.get(pid, best_loss)
            if best_loss > reference + self.delta:
                drifted.append(pid)
            else:
                self._membership[pid] = best_mid
                self._prev_best_loss[pid] = best_loss
        if drifted and len(self._models) < self.max_models:
            new_id = self._next_model_id
            self._next_model_id += 1
            self._models[new_id] = ctx.model_factory().get_params()
            for pid in drifted:
                self._membership[pid] = new_id
                self._prev_best_loss.pop(pid, None)
        elif drifted:
            # Pool is full: drifted parties go to their least-bad model.
            for pid in drifted:
                losses = {mid: ctx.parties[pid].loss_on(params, split="train")
                          for mid, params in self._models.items()}
                self._membership[pid] = min(losses, key=losses.get)
        self._maybe_merge(window)

    def _maybe_merge(self, window: int) -> None:
        """Merge two models when each cohort finds the other interchangeable."""
        ctx = self.context
        model_ids = sorted(self._models)
        rng = ctx.rng("feddrift-merge", window)
        for i, mid_a in enumerate(model_ids):
            for mid_b in model_ids[i + 1:]:
                if mid_a not in self._models or mid_b not in self._models:
                    continue
                cohort_a = [p for p, m in self._membership.items() if m == mid_a]
                cohort_b = [p for p, m in self._membership.items() if m == mid_b]
                if not cohort_a or not cohort_b:
                    continue
                probe_a = [int(p) for p in rng.choice(
                    cohort_a, size=min(self.merge_check_parties, len(cohort_a)),
                    replace=False)]
                probe_b = [int(p) for p in rng.choice(
                    cohort_b, size=min(self.merge_check_parties, len(cohort_b)),
                    replace=False)]
                gap_a = np.mean([
                    ctx.parties[p].loss_on(self._models[mid_b], "train")
                    - ctx.parties[p].loss_on(self._models[mid_a], "train")
                    for p in probe_a
                ])
                gap_b = np.mean([
                    ctx.parties[p].loss_on(self._models[mid_a], "train")
                    - ctx.parties[p].loss_on(self._models[mid_b], "train")
                    for p in probe_b
                ])
                if gap_a < self.delta and gap_b < self.delta:
                    merged = [
                        0.5 * (pa + pb)
                        for pa, pb in zip(self._models[mid_a], self._models[mid_b])
                    ]
                    self._models[mid_a] = merged
                    del self._models[mid_b]
                    for pid, mid in self._membership.items():
                        if mid == mid_b:
                            self._membership[pid] = mid_a

    # ------------------------------------------------------------------ rounds

    def run_round(self, window: int, round_index: int) -> None:
        ctx = self.context
        total_budget = ctx.round_config.participants_per_round
        cohorts = {mid: [p for p, m in self._membership.items() if m == mid]
                   for mid in self._models}
        cohorts = {mid: members for mid, members in cohorts.items() if members}
        n_parties = sum(len(m) for m in cohorts.values())
        for mid, members in cohorts.items():
            k = max(1, int(round(total_budget * len(members) / n_parties)))
            k = min(k, len(members))
            rng = ctx.rng("feddrift-select", window, round_index, mid)
            participants = [int(p) for p in rng.choice(members, size=k, replace=False)]
            new_params, _stats = run_fl_round(
                ctx.parties, participants, self._models[mid],
                ctx.round_config, round_tag=(window, round_index, mid),
                engine=ctx.federation, stream=("model", mid),
                shards=ctx.shard_plan, secure=ctx.masking_spec,
            )
            self._models[mid] = new_params
            num_params = sum(p.size for p in new_params)
            ctx.ledger.record_model_download(num_params, len(participants))
            ctx.ledger.record_model_upload(num_params, len(participants))

    def params_for_party(self, party_id: int) -> Params:
        mid = self._membership.get(party_id)
        if mid is None or mid not in self._models:
            return next(iter(self._models.values()))
        return self._models[mid]

    def describe_state(self) -> dict:
        return {"num_models": len(self._models)}
