"""OORT (Lai et al., OSDI 2021): utility-guided participant selection.

Each party carries a statistical utility — its recent local training loss
scaled by its data volume — and selection exploits the highest-utility
parties while reserving an exploration fraction for rarely seen ones.  The
paper's observation, which this implementation reproduces, is that OORT's
utility estimates go stale under distribution shift: utilities assume static
data, so the selector keeps favouring parties whose scores were earned on
old distributions and underreacts to shifts.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.experiments.registry import register_strategy
from repro.federation.rounds import run_fl_round
from repro.federation.strategy import ContinualStrategy, StrategyContext
from repro.utils.params import Params


@register_strategy("oort")
class OortStrategy(ContinualStrategy):
    """Single global model with epsilon-greedy utility-based selection."""

    name = "oort"

    def __init__(self, exploration_fraction: float = 0.2,
                 utility_smoothing: float = 0.5) -> None:
        super().__init__()
        if not 0.0 <= exploration_fraction <= 1.0:
            raise ValueError("exploration_fraction must be in [0, 1]")
        if not 0.0 < utility_smoothing <= 1.0:
            raise ValueError("utility_smoothing must be in (0, 1]")
        self.exploration_fraction = exploration_fraction
        self.utility_smoothing = utility_smoothing
        self._global: Params | None = None
        self._utilities: dict[int, float] = {}
        self._times_selected: dict[int, int] = {}

    def setup(self, ctx: StrategyContext) -> None:
        super().setup(ctx)
        self._global = ctx.model_factory().get_params()
        # Survey order: every party on the eager path; a pooled population
        # caps this to its seeded survey subset so the utility table stays
        # bounded (OORT needs per-party state by construction).
        self._utilities = {pid: 0.0 for pid in ctx.party_ids}
        self._times_selected = {pid: 0 for pid in ctx.party_ids}

    @property
    def global_params(self) -> Params:
        if self._global is None:
            raise RuntimeError("strategy not set up")
        return self._global

    # ------------------------------------------------------------------ selection

    def _select(self, window: int, round_index: int) -> list[int]:
        ctx = self.context
        rng = ctx.rng("select", self.name, window, round_index)
        ids = list(ctx.party_ids)
        k = min(ctx.round_config.participants_per_round, len(ids))
        n_explore = int(round(self.exploration_fraction * k))
        n_exploit = k - n_explore

        # Exploit: highest utility first (never-selected parties rank lowest
        # here but are prime exploration candidates).
        by_utility = sorted(ids, key=lambda p: -self._utilities[p])
        exploit = by_utility[:n_exploit]
        remaining = [p for p in ids if p not in set(exploit)]
        if n_explore > 0 and remaining:
            # Explore least-selected parties, ties broken randomly.
            rng.shuffle(remaining)
            remaining.sort(key=lambda p: self._times_selected[p])
            explore = remaining[:n_explore]
        else:
            explore = []
        selected = exploit + explore
        # Top up if exploration pool ran dry.
        if len(selected) < k:
            leftovers = [p for p in ids if p not in set(selected)]
            selected += leftovers[: k - len(selected)]
        return selected

    def _update_utilities(self, updates: dict[int, tuple[float, int]]) -> None:
        """EMA of loss * sqrt(samples) — OORT's statistical utility shape."""
        for pid, (loss, samples) in updates.items():
            if not np.isfinite(loss):
                continue
            utility = float(loss * np.sqrt(max(samples, 1)))
            old = self._utilities[pid]
            s = self.utility_smoothing
            self._utilities[pid] = (1 - s) * old + s * utility

    # ------------------------------------------------------------------ rounds

    def run_round(self, window: int, round_index: int) -> None:
        ctx = self.context
        participants = self._select(window, round_index)
        config = replace(ctx.round_config,
                         local=replace(ctx.round_config.local, prox_mu=0.0))
        for pid in participants:
            self._times_selected[pid] += 1
        new_params, stats = run_fl_round(
            ctx.parties, participants, self.global_params, config,
            round_tag=(window, round_index),
            engine=ctx.federation, stream="global",
            shards=ctx.shard_plan, secure=ctx.masking_spec,
        )
        self._global = new_params
        # Utilities update from training-time losses (what the device itself
        # observed), so the selector keeps learning about parties whose
        # reports are still in flight under buffered/async participation.
        # Dropped parties never train, so their utilities stay unchanged.
        self._update_utilities({pid: (loss, stats.samples[pid])
                                for pid, loss in stats.mean_losses.items()})
        num_params = sum(p.size for p in self._global)
        ctx.ledger.record_model_download(num_params, len(participants))
        ctx.ledger.record_model_upload(num_params, len(participants))

    def params_for_party(self, party_id: int) -> Params:
        return self.global_params

    def describe_state(self) -> dict:
        return {
            "num_models": 1,
            "mean_utility": float(np.mean(list(self._utilities.values()))),
        }
