"""Fielding (Li et al., 2024): label-distribution clustering with adaptation.

Parties are clustered by their label histograms; each cluster trains its own
model via FedAvg over cluster members.  When a party's label distribution
moves (JSD above a re-cluster threshold), the affected parties are
re-assigned to the nearest cluster and clusters are periodically re-fit —
the "adaptation to data drifts" of the original system.  Crucially the
clustering key is the *label* histogram only: covariate shifts leave label
histograms untouched, so Fielding keeps training on shifted inputs with
unshifted cluster structure, which is exactly the failure mode the paper
reports for it.
"""

from __future__ import annotations

import numpy as np

from repro.detection.divergence import jsd
from repro.experiments.registry import register_strategy
from repro.federation.rounds import run_fl_round
from repro.federation.strategy import ContinualStrategy, StrategyContext
from repro.flips.selector import FlipsSelector
from repro.utils.params import Params


@register_strategy("fielding")
class FieldingStrategy(ContinualStrategy):
    """Per-label-cluster models with JSD-triggered re-clustering."""

    name = "fielding"

    def __init__(self, recluster_jsd: float | None = None,
                 max_clusters: int = 4) -> None:
        super().__init__()
        if recluster_jsd is not None and recluster_jsd < 0:
            raise ValueError("recluster_jsd must be non-negative")
        if max_clusters <= 0:
            raise ValueError("max_clusters must be positive")
        # None = resolve from the run precision's threshold table in setup()
        # (the historical float64 value is 0.15); explicit values win.
        self.recluster_jsd = recluster_jsd
        self.max_clusters = max_clusters
        self._cluster_models: dict[int, Params] = {}
        self._membership: dict[int, int] = {}  # party -> cluster
        self._cluster_histograms: dict[int, np.ndarray] = {}
        self._last_histograms: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ clustering

    def _fit_clusters(self, window: int) -> None:
        ctx = self.context
        # Survey order: every party eagerly, a seeded subset under a capped
        # pool (clustering needs one histogram per surveyed party).
        histograms = {pid: party.label_histogram()
                      for pid, party in ctx.iter_parties()}
        selector = FlipsSelector(max_clusters=self.max_clusters)
        selector.fit(histograms, ctx.rng("fielding-cluster", window))
        clusters = selector.clusters
        old_models = self._cluster_models
        self._cluster_models = {}
        self._membership = {}
        self._cluster_histograms = {}
        for cluster_id, members in clusters.items():
            for pid in members:
                self._membership[pid] = cluster_id
            mean_hist = np.mean([histograms[pid] for pid in members], axis=0)
            self._cluster_histograms[cluster_id] = mean_hist / mean_hist.sum()
            # Warm-start from the closest previous model when one exists.
            if old_models:
                self._cluster_models[cluster_id] = next(iter(old_models.values()))
                self._cluster_models[cluster_id] = [
                    p.copy() for p in self._cluster_models[cluster_id]
                ]
            else:
                self._cluster_models[cluster_id] = ctx.model_factory().get_params()
        self._last_histograms = histograms

    def setup(self, ctx: StrategyContext) -> None:
        super().setup(ctx)
        if self.recluster_jsd is None:
            self.recluster_jsd = ctx.threshold("fielding.recluster_jsd", 0.15)
        self._cluster_models = {}
        self._membership = {}

    def start_window(self, window: int) -> None:
        ctx = self.context
        if not self._cluster_models:
            self._fit_clusters(window)
            return
        # Re-cluster only when label histograms actually moved: covariate
        # shift is invisible here.
        moved = 0
        for pid, party in ctx.iter_parties():
            new_hist = party.label_histogram()
            old_hist = self._last_histograms.get(pid)
            if old_hist is not None and jsd(new_hist, old_hist) > self.recluster_jsd:
                moved += 1
        if moved > 0:
            self._fit_clusters(window)
        else:
            self._last_histograms = {
                pid: party.label_histogram() for pid, party in ctx.iter_parties()
            }

    # ------------------------------------------------------------------ rounds

    def _budget_split(self) -> dict[int, int]:
        """Split the participant budget across clusters by cohort size."""
        ctx = self.context
        total = ctx.round_config.participants_per_round
        sizes = {c: sum(1 for p in self._membership.values() if p == c)
                 for c in self._cluster_models}
        sizes = {c: s for c, s in sizes.items() if s > 0}
        n_parties = sum(sizes.values())
        budget = {c: max(1, int(round(total * s / n_parties))) for c, s in sizes.items()}
        return budget

    def run_round(self, window: int, round_index: int) -> None:
        ctx = self.context
        budget = self._budget_split()
        for cluster_id, k in budget.items():
            members = [p for p, c in self._membership.items() if c == cluster_id]
            if not members:
                continue
            rng = ctx.rng("fielding-select", window, round_index, cluster_id)
            k = min(k, len(members))
            participants = [int(p) for p in rng.choice(members, size=k, replace=False)]
            new_params, _stats = run_fl_round(
                ctx.parties, participants, self._cluster_models[cluster_id],
                ctx.round_config, round_tag=(window, round_index, cluster_id),
                engine=ctx.federation, stream=("cluster", cluster_id),
                shards=ctx.shard_plan, secure=ctx.masking_spec,
            )
            self._cluster_models[cluster_id] = new_params
            num_params = sum(p.size for p in new_params)
            ctx.ledger.record_model_download(num_params, len(participants))
            ctx.ledger.record_model_upload(num_params, len(participants))

    def params_for_party(self, party_id: int) -> Params:
        cluster_id = self._membership.get(party_id)
        if cluster_id is None or cluster_id not in self._cluster_models:
            # Not yet clustered: fall back to any model.
            return next(iter(self._cluster_models.values()))
        return self._cluster_models[cluster_id]

    def describe_state(self) -> dict:
        return {"num_models": len(self._cluster_models)}
