"""Plain FedAvg: one global model, uniform participant selection."""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.registry import register_strategy
from repro.federation.rounds import run_fl_round
from repro.federation.strategy import ContinualStrategy, StrategyContext
from repro.utils.params import Params


@register_strategy("fedavg")
class FedAvgStrategy(ContinualStrategy):
    """Single global model, uniform random selection (McMahan et al., 2017)."""

    name = "fedavg"

    def __init__(self) -> None:
        super().__init__()
        self._global: Params | None = None

    def setup(self, ctx: StrategyContext) -> None:
        super().setup(ctx)
        self._global = ctx.model_factory().get_params()

    @property
    def global_params(self) -> Params:
        if self._global is None:
            raise RuntimeError("strategy not set up")
        return self._global

    def _select(self, window: int, round_index: int) -> list[int]:
        ctx = self.context
        rng = ctx.rng("select", self.name, window, round_index)
        # sample_cohort reproduces the historical sorted-id draw bitwise and
        # scales to pooled populations without enumerating them.
        return ctx.sample_cohort(rng)

    def _local_config(self):
        return replace(self.context.round_config.local, prox_mu=0.0)

    def run_round(self, window: int, round_index: int) -> None:
        ctx = self.context
        participants = self._select(window, round_index)
        config = replace(ctx.round_config, local=self._local_config())
        new_params, _stats = run_fl_round(
            ctx.parties, participants, self.global_params, config,
            round_tag=(window, round_index),
            engine=ctx.federation, stream="global",
            shards=ctx.shard_plan, secure=ctx.masking_spec,
        )
        self._global = new_params
        num_params = sum(p.size for p in new_params)
        ctx.ledger.record_model_download(num_params, len(participants))
        ctx.ledger.record_model_upload(num_params, len(participants))

    def params_for_party(self, party_id: int) -> Params:
        return self.global_params

    def describe_state(self) -> dict:
        return {"num_models": 1}
