"""Per-cohort drift schedules: *how* shift arrives, as declarative data.

The legacy schedule (:func:`repro.data.registry.build_shift_schedule`)
hard-codes one arrival shape: every window, 50 % of parties jump to the
window's regime.  The paper's evaluation story — and the scenario DSL built
on top of this module — needs the arrival *shape* itself to be part of the
spec: sudden jumps, gradual severity ramps, regimes that recur and vanish,
and class-incremental label arrival, each hitting a different cohort of
parties at (possibly) different times.

A :class:`CohortDrift` describes one cohort's trajectory.  A tuple of them
on :attr:`DatasetSpec.drift <repro.data.registry.DatasetSpec>` replaces the
legacy 50 %-per-window assignment entirely; an empty tuple (the default for
every registered dataset) keeps the historical schedule bit for bit.

Arrival kinds
-------------
* ``sudden`` — the cohort jumps to ``(corruption, severity)`` at
  ``start_window`` and stays there.
* ``gradual`` — severity ramps ``1 → severity`` over ``ramp_windows``
  windows starting at ``start_window``; each step is its own regime.
* ``recurring`` — the cohort alternates between the regime and clean data:
  ``period`` windows shifted, ``period`` windows clean, repeating.  The
  shifted phases share one regime id, which is the expert-reuse hook.
* ``class_incremental`` — at ``start_window`` the cohort's label prior
  collapses to the first ``classes_per_window`` classes of a seeded
  per-cohort class order; every later window ``classes_per_window`` more
  classes arrive until the full prior is restored.  Covariates stay on
  ``(corruption, severity)`` (default clean).

``max_phase_offset`` desynchronizes the cohort: each member draws a seeded
offset in ``[0, max_phase_offset]`` windows and experiences the whole
trajectory that many windows late — DriftGuard-style *asynchronous* drift,
where clients drift at different times.

Fuzzing knob ranges
-------------------
The seeded scenario generator (:mod:`repro.scenarios.generator`) samples
from ``FUZZ_RANGES`` below; the ranges double as the documented valid
space for hand-written scenario docs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping

ARRIVALS = ("sudden", "gradual", "recurring", "class_incremental")

#: Knob ranges the seeded fuzzer samples from (inclusive bounds).  These are
#: deliberately narrower than what validation accepts: fuzzed scenarios must
#: stay cheap enough for CI while still covering every arrival kind.
FUZZ_RANGES: dict[str, tuple] = {
    "arrival": ARRIVALS,
    "fraction": (0.2, 0.5),
    "severity": (2, 5),
    "start_window": (1, 2),
    "ramp_windows": (1, 3),
    "period": (1, 2),
    "classes_per_window": (1, 2),
    "max_phase_offset": (0, 1),
}


@dataclass(frozen=True)
class CohortDrift:
    """One cohort's drift trajectory (see module docstring for semantics).

    ``fraction`` is the share of the population assigned to this cohort;
    cohorts are carved from one seeded permutation in declaration order, so
    fractions across a spec's entries must sum to at most 1 (parties left
    over stay clean for the whole run).  ``severity`` is the *target*
    severity — the ramp endpoint for ``gradual``, the constant level
    otherwise.
    """

    arrival: str = "sudden"
    corruption: str = "fog"
    severity: int = 4
    fraction: float = 0.5
    start_window: int = 1
    ramp_windows: int = 2
    period: int = 1
    classes_per_window: int = 2
    max_phase_offset: int = 0

    def __post_init__(self) -> None:
        from repro.data.corruptions import CORRUPTIONS

        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"arrival must be one of {ARRIVALS}; got '{self.arrival}'")
        if self.corruption not in CORRUPTIONS:
            raise ValueError(
                f"unknown corruption '{self.corruption}'; "
                f"available: {sorted(CORRUPTIONS)}")
        if not 1 <= int(self.severity) <= 5:
            raise ValueError(f"severity must be 1..5; got {self.severity}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"fraction must be in (0, 1]; got {self.fraction}")
        if self.start_window < 1:
            raise ValueError(
                f"start_window must be >= 1 (window 0 is the clean burn-in); "
                f"got {self.start_window}")
        if self.ramp_windows < 1:
            raise ValueError(f"ramp_windows must be >= 1; got {self.ramp_windows}")
        if self.period < 1:
            raise ValueError(f"period must be >= 1; got {self.period}")
        if self.classes_per_window < 1:
            raise ValueError(
                f"classes_per_window must be >= 1; got {self.classes_per_window}")
        if self.max_phase_offset < 0:
            raise ValueError(
                f"max_phase_offset must be >= 0; got {self.max_phase_offset}")

    # ------------------------------------------------------------- evolution

    def regime_at(self, effective_window: int) -> tuple[str, int]:
        """The ``(corruption, severity)`` a member sees at its *effective*
        window (the run window minus the member's phase offset).

        Returns the clean regime ``("identity", 1)`` before ``start_window``
        and on the off-phases of a ``recurring`` trajectory.
        """
        e = effective_window
        if e < self.start_window:
            return ("identity", 1)
        if self.arrival == "sudden":
            return (self.corruption, self.severity)
        if self.arrival == "gradual":
            if self.ramp_windows == 1:
                return (self.corruption, self.severity)
            step = min(self.ramp_windows - 1, e - self.start_window)
            sev = 1 + round(step * (self.severity - 1)
                            / (self.ramp_windows - 1))
            return (self.corruption, int(sev))
        if self.arrival == "recurring":
            phase = (e - self.start_window) // self.period
            if phase % 2 == 0:
                return (self.corruption, self.severity)
            return ("identity", 1)
        # class_incremental: the covariate regime is constant from the start
        # window on (clean by default) — the schedule moves P(Y), not P(X).
        return (self.corruption, self.severity)

    def allowed_classes(self, effective_window: int,
                        num_classes: int) -> int | None:
        """How many classes of the cohort's seeded class order are available
        at the effective window (``class_incremental`` only; None = all)."""
        if self.arrival != "class_incremental":
            return None
        e = effective_window
        if e < self.start_window:
            return None
        return min(num_classes,
                   self.classes_per_window * (e - self.start_window + 1))

    # --------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_value(cls, value: "CohortDrift | Mapping") -> "CohortDrift":
        if isinstance(value, CohortDrift):
            return value
        if isinstance(value, Mapping):
            known = {f.name for f in dataclasses.fields(cls)}
            unknown = set(value) - known
            if unknown:
                raise ValueError(
                    f"unknown drift keys {sorted(unknown)}; "
                    f"valid keys: {sorted(known)}")
            return cls(**dict(value))
        raise TypeError(
            f"cannot interpret drift entry {value!r}; expected a mapping or "
            f"CohortDrift")


def validate_drift_plan(drift: tuple[CohortDrift, ...],
                        num_windows: int | None = None) -> None:
    """Cross-entry checks a single ``CohortDrift`` cannot perform itself."""
    total = sum(d.fraction for d in drift)
    if total > 1.0 + 1e-9:
        raise ValueError(
            f"drift cohort fractions sum to {total:.3f} > 1; cohorts are "
            f"disjoint slices of one population")
    if num_windows is not None:
        for d in drift:
            if d.start_window >= num_windows:
                raise ValueError(
                    f"drift start_window {d.start_window} is outside the run "
                    f"(num_windows={num_windows}; last window is "
                    f"{num_windows - 1})")
