"""Synthetic federated datasets with controllable covariate and label shift.

The paper evaluates on FMoW, Tiny-ImageNet-C, CIFAR-10-C, FEMNIST and
Fashion-MNIST.  Those corpora are not available offline, so this package
builds the closest synthetic equivalents that exercise the same code paths:

* :mod:`repro.data.images` — a class-template image generator whose classes
  are separable by small models (``P(Y|X)`` is stable and learnable);
* :mod:`repro.data.corruptions` — the corruption families of the -C datasets
  (weather, noise, blur, digital) plus the PyTorch-transform-style shifts
  used for FEMNIST/Fashion-MNIST, each at 5 severities (moves ``P(X)``);
* :mod:`repro.data.partition` — Dirichlet non-IID partitioning and per-window
  label-prior resampling (moves ``P(Y)``);
* :mod:`repro.data.registry` — the five simulated dataset specs and their
  per-window shift schedules (50 % of parties shift per window, recurring
  regimes for expert-reuse dynamics);
* :mod:`repro.data.federated` — materializes per-party, per-window train/test
  arrays for the FL simulator.
"""

from repro.data.images import ImageDomainSpec, SyntheticImageGenerator
from repro.data.corruptions import (
    CORRUPTIONS,
    CORRUPTION_GROUPS,
    apply_corruption,
    corruption_names,
)
from repro.data.partition import (
    dirichlet_label_priors,
    sample_counts_from_prior,
    partition_by_dirichlet,
)
from repro.data.registry import (
    DatasetSpec,
    RegimeAssignment,
    ShiftSchedule,
    build_shift_schedule,
    dataset_names,
    get_dataset_spec,
)
from repro.data.federated import PartyWindowData, FederatedShiftDataset

__all__ = [
    "ImageDomainSpec",
    "SyntheticImageGenerator",
    "CORRUPTIONS",
    "CORRUPTION_GROUPS",
    "apply_corruption",
    "corruption_names",
    "dirichlet_label_priors",
    "sample_counts_from_prior",
    "partition_by_dirichlet",
    "DatasetSpec",
    "RegimeAssignment",
    "ShiftSchedule",
    "build_shift_schedule",
    "dataset_names",
    "get_dataset_spec",
    "PartyWindowData",
    "FederatedShiftDataset",
]
