"""Materialize per-party, per-window federated data from a shift schedule.

:class:`FederatedShiftDataset` is the simulator's data plane: given a
:class:`~repro.data.registry.DatasetSpec` it deterministically generates each
party's labelled train/test arrays for each window, applying the window's
corruption regime and label prior.  Sliding-window datasets blend a fraction
of the *previous* regime into a freshly shifted window, modelling the gradual
transition sliding windows capture in the paper; tumbling windows switch
abruptly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.corruptions import apply_corruption
from repro.data.images import ImageDomainSpec, SyntheticImageGenerator
from repro.data.registry import (
    DatasetSpec,
    RegimeAssignment,
    ShiftSchedule,
    build_shift_schedule,
)
from repro.utils.rng import spawn_rng


@dataclass
class PartyWindowData:
    """One party's data for one window."""

    party_id: int
    window: int
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    regime: RegimeAssignment
    label_prior: np.ndarray

    @property
    def num_train(self) -> int:
        return int(self.x_train.shape[0])

    @property
    def num_test(self) -> int:
        return int(self.x_test.shape[0])

    def label_histogram(self, num_classes: int) -> np.ndarray:
        """Normalized train label histogram (what Algorithm 1 reports)."""
        counts = np.bincount(self.y_train, minlength=num_classes).astype(np.float64)
        total = counts.sum()
        if total == 0:
            return np.full(num_classes, 1.0 / num_classes)
        return counts / total


class FederatedShiftDataset:
    """Deterministic generator of party/window data under a shift schedule."""

    def __init__(self, spec: DatasetSpec, schedule: ShiftSchedule | None = None,
                 sliding_overlap: float = 0.3) -> None:
        if not 0.0 <= sliding_overlap < 1.0:
            raise ValueError("sliding_overlap must be in [0, 1)")
        self.spec = spec
        self.schedule = schedule if schedule is not None else build_shift_schedule(spec)
        if self.schedule.spec.name != spec.name:
            raise ValueError("schedule was built for a different dataset spec")
        self.sliding_overlap = sliding_overlap if spec.windowing == "sliding" else 0.0
        self.generator = SyntheticImageGenerator(ImageDomainSpec(
            num_classes=spec.num_classes,
            image_size=spec.image_size,
            channels=spec.channels,
            noise_scale=spec.domain_noise_scale,
            seed=spec.seed,
        ))
        self._cache: dict[tuple[int, int], PartyWindowData] = {}

    # ------------------------------------------------------------------ generation

    def _generate_split(self, party: int, window: int, n: int, split: str,
                        regime: RegimeAssignment,
                        prior: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        rng = spawn_rng(self.spec.seed, "data", party, window, split)
        x, y = self.generator.sample_dataset(prior, n, rng)
        x = apply_corruption(x, regime.corruption, regime.severity, rng)
        return x, y

    def _assemble_window(self, party: int, shard: int,
                         window: int) -> PartyWindowData:
        """Build one window: regimes/priors from ``shard``'s schedule slot,
        sample draws from ``party``'s own RNG streams.

        For in-schedule parties ``shard == party`` and this is the historical
        generation path bit for bit; virtual parties (``party`` beyond the
        schedule) reuse a shard's shift trajectory with private data draws.
        """
        regime = self.schedule.regime_of(window, shard)
        prior = self.schedule.prior_of(window, shard)
        n_train, n_test = self.spec.train_per_window, self.spec.test_per_window

        carry = 0
        prev_regime = self.schedule.regime_of(window - 1, shard) if window > 0 else None
        regime_changed = (prev_regime is not None
                          and prev_regime.regime_id != regime.regime_id)
        if self.sliding_overlap > 0 and regime_changed:
            carry = int(round(self.sliding_overlap * n_train))

        x_new, y_new = self._generate_split(
            party, window, n_train - carry, "train", regime, prior
        )
        if carry and prev_regime is not None:
            prev_prior = self.schedule.prior_of(window - 1, shard)
            x_old, y_old = self._generate_split(
                party, window, carry, "train-overlap", prev_regime, prev_prior
            )
            x_train = np.concatenate([x_old, x_new])
            y_train = np.concatenate([y_old, y_new])
        else:
            x_train, y_train = x_new, y_new

        x_test, y_test = self._generate_split(party, window, n_test, "test", regime, prior)
        return PartyWindowData(
            party_id=party,
            window=window,
            x_train=x_train,
            y_train=y_train,
            x_test=x_test,
            y_test=y_test,
            regime=regime,
            label_prior=prior.copy(),
        )

    def party_window(self, party: int, window: int) -> PartyWindowData:
        """Materialize (and cache) one party's data for one window."""
        if not 0 <= party < self.spec.num_parties:
            raise ValueError(f"party {party} out of range")
        if not 0 <= window < self.spec.num_windows:
            raise ValueError(f"window {window} out of range")
        key = (party, window)
        if key in self._cache:
            return self._cache[key]
        data = self._assemble_window(party, party, window)
        self._cache[key] = data
        return data

    def virtual_party_window(self, party: int, window: int) -> PartyWindowData:
        """One window for a party that may lie beyond the schedule.

        Virtual parties (``party >= spec.num_parties``) follow the shift
        trajectory of dataset shard ``party % spec.num_parties`` but draw
        their samples from their own ``(seed, "data", party, ...)`` streams,
        so a million-party population has a million distinct datasets over
        ``num_parties`` schedule slots.  Virtual windows are *not* cached —
        the :class:`~repro.federation.pool.PartyPool` regenerates them on
        materialization, which is what keeps pooled memory flat in the
        population size.  In-schedule ids delegate to :meth:`party_window`
        (cached, bitwise-identical to the eager path).
        """
        if party < 0:
            raise ValueError(f"party {party} out of range")
        if party < self.spec.num_parties:
            return self.party_window(party, window)
        if not 0 <= window < self.spec.num_windows:
            raise ValueError(f"window {window} out of range")
        return self._assemble_window(party, party % self.spec.num_parties,
                                     window)

    def window_data(self, window: int) -> list[PartyWindowData]:
        """All parties' data for one window."""
        return [self.party_window(p, window) for p in range(self.spec.num_parties)]

    def reference_data(self, n: int = 128) -> tuple[np.ndarray, np.ndarray]:
        """Clean, uniformly labelled reference set for aggregator calibration.

        This is the fixed reference dataset of Section 5.4 used to derive the
        null distributions behind the detection thresholds.
        """
        rng = spawn_rng(self.spec.seed, "reference")
        prior = np.full(self.spec.num_classes, 1.0 / self.spec.num_classes)
        return self.generator.sample_dataset(prior, n, rng)

    def evict_window(self, window: int) -> None:
        """Drop cached arrays for a window (bounds simulator memory)."""
        for party in range(self.spec.num_parties):
            self._cache.pop((party, window), None)
