"""Corruption library: the -C benchmark families at five severities.

Mirrors the corruption taxonomy of CIFAR-10-C / Tiny-ImageNet-C (Hendrycks &
Dietterich 2019) used by the paper, plus the PyTorch-transform style shifts
(rotation, scaling, colour jitter) the paper applies to FEMNIST and
Fashion-MNIST.  Every operator maps a batch ``(n, c, h, w)`` in [0, 1] to a
corrupted batch of the same shape and range, moving ``P(X)`` while leaving
class semantics (``P(Y|X)``) intact.

Severity runs 1..5 (paper convention); parameters grow monotonically.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import ndimage

CorruptionFn = Callable[[np.ndarray, int, np.random.Generator], np.ndarray]


def _check_batch(x: np.ndarray) -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 4:
        raise ValueError(f"corruptions expect (n, c, h, w); got shape {arr.shape}")
    return arr


def _check_severity(severity: int) -> int:
    if not 1 <= int(severity) <= 5:
        raise ValueError(f"severity must be in 1..5; got {severity}")
    return int(severity)


def _sev(values: tuple, severity: int):
    return values[_check_severity(severity) - 1]


def identity(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    """The clean regime (no corruption)."""
    return _check_batch(x).copy()


# ------------------------------------------------------------------ noise family

def gaussian_noise(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    sigma = _sev((0.08, 0.12, 0.18, 0.26, 0.38), severity)
    x = _check_batch(x)
    return np.clip(x + rng.normal(0.0, sigma, size=x.shape), 0.0, 1.0)


def shot_noise(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    rate = _sev((60.0, 25.0, 12.0, 5.0, 3.0), severity)
    x = _check_batch(x)
    return np.clip(rng.poisson(x * rate) / rate, 0.0, 1.0)


def impulse_noise(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    amount = _sev((0.03, 0.06, 0.09, 0.17, 0.27), severity)
    x = _check_batch(x).copy()
    mask = rng.random(x.shape)
    x[mask < amount / 2] = 0.0
    x[mask > 1.0 - amount / 2] = 1.0
    return x


# ------------------------------------------------------------------ blur family

def gaussian_blur(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    sigma = _sev((0.4, 0.6, 0.9, 1.2, 1.6), severity)
    x = _check_batch(x)
    return np.clip(ndimage.gaussian_filter(x, sigma=(0, 0, sigma, sigma)), 0.0, 1.0)


def defocus_blur(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    size = _sev((2, 3, 3, 5, 5), severity)
    repeats = _sev((1, 1, 2, 1, 2), severity)
    x = _check_batch(x)
    out = x
    for _ in range(repeats):
        out = ndimage.uniform_filter(out, size=(1, 1, size, size))
    return np.clip(out, 0.0, 1.0)


def motion_blur(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    length = _sev((2, 3, 4, 5, 6), severity)
    x = _check_batch(x)
    out = np.zeros_like(x)
    for k in range(length):
        out += np.roll(x, k, axis=3)
    return np.clip(out / length, 0.0, 1.0)


# ------------------------------------------------------------------ weather family

def _smooth_field(shape: tuple[int, ...], rng: np.random.Generator,
                  smoothness: float) -> np.ndarray:
    """Normalized low-frequency random field in [0, 1]."""
    field = rng.normal(size=shape)
    field = ndimage.gaussian_filter(field, sigma=(0, 0, smoothness, smoothness))
    lo = field.min(axis=(2, 3), keepdims=True)
    hi = field.max(axis=(2, 3), keepdims=True)
    return (field - lo) / np.maximum(hi - lo, 1e-9)


def fog(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    """Blend toward a bright low-frequency haze field and reduce contrast."""
    t = _sev((0.30, 0.40, 0.50, 0.60, 0.70), severity)
    x = _check_batch(x)
    haze = 0.6 + 0.4 * _smooth_field(x.shape, rng, smoothness=x.shape[2] / 4)
    return np.clip((1.0 - t) * x + t * haze, 0.0, 1.0)


def frost(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    """Overlay bright crystalline patches (thresholded smooth noise)."""
    cover = _sev((0.20, 0.30, 0.40, 0.50, 0.60), severity)
    strength = _sev((0.4, 0.5, 0.6, 0.7, 0.8), severity)
    x = _check_batch(x)
    field = _smooth_field(x.shape, rng, smoothness=1.0)
    crystals = (field > 1.0 - cover) * strength
    return np.clip(np.maximum(x, crystals) * (1.0 - 0.15 * strength) + 0.1 * strength,
                   0.0, 1.0)


def snow(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    """Sparse bright speckles plus global whitening."""
    density = _sev((0.04, 0.08, 0.12, 0.18, 0.25), severity)
    whitening = _sev((0.10, 0.15, 0.20, 0.25, 0.30), severity)
    x = _check_batch(x)
    n, c, h, w = x.shape
    flakes = (rng.random((n, 1, h, w)) < density).astype(np.float64)
    flakes = np.broadcast_to(flakes, x.shape)
    out = np.maximum(x, flakes * rng.uniform(0.8, 1.0))
    return np.clip(out * (1 - whitening) + whitening, 0.0, 1.0)


def rain(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    """Diagonal streak overlay plus slight darkening."""
    density = _sev((0.03, 0.05, 0.08, 0.12, 0.16), severity)
    streak_len = _sev((2, 3, 3, 4, 5), severity)
    x = _check_batch(x)
    n, c, h, w = x.shape
    drops = (rng.random((n, 1, h, w)) < density).astype(np.float64)
    streaks = np.zeros_like(drops)
    for k in range(streak_len):
        streaks = np.maximum(streaks, np.roll(drops, (k, k), axis=(2, 3)))
    streaks = np.broadcast_to(streaks, x.shape)
    darkened = x * (1.0 - 0.15)
    return np.clip(np.maximum(darkened, streaks * 0.75), 0.0, 1.0)


# ------------------------------------------------------------------ digital family

def brightness(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    delta = _sev((0.10, 0.16, 0.22, 0.30, 0.40), severity)
    x = _check_batch(x)
    return np.clip(x + delta, 0.0, 1.0)


def contrast(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    factor = _sev((0.70, 0.55, 0.40, 0.30, 0.20), severity)
    x = _check_batch(x)
    mean = x.mean(axis=(2, 3), keepdims=True)
    return np.clip((x - mean) * factor + mean, 0.0, 1.0)


def pixelate(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    factor = _sev((2, 2, 3, 4, 6), severity)
    x = _check_batch(x)
    n, c, h, w = x.shape
    small_h, small_w = max(1, h // factor), max(1, w // factor)
    # Block-mean downsample, then nearest-neighbour upsample.
    ys = (np.arange(h) * small_h // h).clip(0, small_h - 1)
    xs = (np.arange(w) * small_w // w).clip(0, small_w - 1)
    down = np.zeros((n, c, small_h, small_w))
    counts = np.zeros((small_h, small_w))
    for i in range(h):
        for j in range(w):
            down[:, :, ys[i], xs[j]] += x[:, :, i, j]
            counts[ys[i], xs[j]] += 1
    down /= counts
    return np.clip(down[:, :, ys][:, :, :, xs], 0.0, 1.0)


# ------------------------------------------------------------------ transform family
# (the PyTorch-transform analogues the paper uses on FEMNIST / Fashion-MNIST)

def rotation(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    angle = _sev((8.0, 15.0, 22.0, 30.0, 40.0), severity)
    x = _check_batch(x)
    jitter = rng.uniform(-3.0, 3.0)
    return np.clip(
        ndimage.rotate(x, angle + jitter, axes=(2, 3), reshape=False, order=1,
                       mode="nearest"),
        0.0, 1.0,
    )


def translate(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    shift = _sev((1, 2, 2, 3, 4), severity)
    x = _check_batch(x)
    dy = int(rng.integers(-shift, shift + 1))
    dx = int(rng.integers(-shift, shift + 1))
    if dy == 0 and dx == 0:
        dy = shift
    return np.roll(x, (dy, dx), axis=(2, 3))


def scale_jitter(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    factor = _sev((1.15, 1.25, 1.35, 1.50, 1.70), severity)
    x = _check_batch(x)
    n, c, h, w = x.shape
    zoomed = ndimage.zoom(x, (1, 1, factor, factor), order=1)
    zh, zw = zoomed.shape[2], zoomed.shape[3]
    top, left = (zh - h) // 2, (zw - w) // 2
    return np.clip(zoomed[:, :, top:top + h, left:left + w], 0.0, 1.0)


def color_jitter(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    spread = _sev((0.10, 0.18, 0.26, 0.35, 0.45), severity)
    x = _check_batch(x)
    c = x.shape[1]
    gains = rng.uniform(1.0 - spread, 1.0 + spread, size=(1, c, 1, 1))
    offset = rng.uniform(-spread / 2, spread / 2)
    return np.clip(x * gains + offset, 0.0, 1.0)


def invert_polarity(x: np.ndarray, severity: int, rng: np.random.Generator) -> np.ndarray:
    """Partial intensity inversion — an aggressive covariate regime."""
    alpha = _sev((0.3, 0.45, 0.6, 0.8, 1.0), severity)
    x = _check_batch(x)
    return np.clip((1.0 - alpha) * x + alpha * (1.0 - x), 0.0, 1.0)


CORRUPTIONS: dict[str, CorruptionFn] = {
    "identity": identity,
    "gaussian_noise": gaussian_noise,
    "shot_noise": shot_noise,
    "impulse_noise": impulse_noise,
    "gaussian_blur": gaussian_blur,
    "defocus_blur": defocus_blur,
    "motion_blur": motion_blur,
    "fog": fog,
    "frost": frost,
    "snow": snow,
    "rain": rain,
    "brightness": brightness,
    "contrast": contrast,
    "pixelate": pixelate,
    "rotation": rotation,
    "translate": translate,
    "scale_jitter": scale_jitter,
    "color_jitter": color_jitter,
    "invert_polarity": invert_polarity,
}

CORRUPTION_GROUPS: dict[str, tuple[str, ...]] = {
    "weather": ("fog", "rain", "snow", "frost"),
    "noise": ("gaussian_noise", "shot_noise", "impulse_noise"),
    "blur": ("gaussian_blur", "defocus_blur", "motion_blur"),
    "digital": ("brightness", "contrast", "pixelate"),
    "transform": ("rotation", "translate", "scale_jitter", "color_jitter"),
}


def corruption_names(group: str | None = None) -> tuple[str, ...]:
    """All corruption names, or those of one group."""
    if group is None:
        return tuple(CORRUPTIONS)
    if group not in CORRUPTION_GROUPS:
        raise KeyError(f"unknown corruption group '{group}'")
    return CORRUPTION_GROUPS[group]


def apply_corruption(x: np.ndarray, name: str, severity: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Apply a named corruption at a given severity to a batch."""
    if name not in CORRUPTIONS:
        raise KeyError(f"unknown corruption '{name}'; available: {sorted(CORRUPTIONS)}")
    return CORRUPTIONS[name](x, severity, rng)
