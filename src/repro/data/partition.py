"""Non-IID partitioning and label-shift machinery.

The paper uses Dirichlet sampling to skew label distributions across parties
and across time windows (Section 6, "Distributional Shifts").  We provide:

* :func:`dirichlet_label_priors` — per-party class priors ~ Dir(alpha);
* :func:`sample_counts_from_prior` — integer per-class sample counts that
  respect a prior exactly in expectation;
* :func:`partition_by_dirichlet` — split a pre-drawn labelled pool across
  parties with Dirichlet class proportions (for fixed-corpus experiments).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import normalize_histogram


def dirichlet_label_priors(num_parties: int, num_classes: int, alpha: float,
                           rng: np.random.Generator) -> np.ndarray:
    """Draw one class prior per party from Dir(alpha).

    Smaller ``alpha`` means more skew (alpha -> 0 approaches one-class
    parties; alpha -> inf approaches uniform priors).
    Returns an array of shape (num_parties, num_classes).
    """
    if num_parties <= 0:
        raise ValueError("num_parties must be positive")
    if num_classes < 2:
        raise ValueError("num_classes must be at least 2")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    priors = rng.dirichlet(np.full(num_classes, alpha), size=num_parties)
    # Guard against degenerate all-zero rows from extreme alpha underflow.
    priors = np.clip(priors, 1e-9, None)
    return priors / priors.sum(axis=1, keepdims=True)


def sample_counts_from_prior(prior: np.ndarray, n: int,
                             rng: np.random.Generator) -> np.ndarray:
    """Multinomial per-class counts summing to ``n`` with probabilities ``prior``."""
    prior = normalize_histogram(np.asarray(prior, dtype=np.float64))
    if n < 0:
        raise ValueError("n must be non-negative")
    return rng.multinomial(n, prior)


def partition_by_dirichlet(labels: np.ndarray, num_parties: int, alpha: float,
                           rng: np.random.Generator,
                           min_samples_per_party: int = 1) -> list[np.ndarray]:
    """Split indices of a labelled pool across parties, Dirichlet-skewed.

    Classic FL partitioning: for each class, the class's sample indices are
    distributed across parties with proportions ~ Dir(alpha).  Retries until
    every party holds at least ``min_samples_per_party`` samples (up to a
    bounded number of attempts, then pads by stealing from the largest
    party), so downstream training never sees an empty shard.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be 1-D")
    classes = np.unique(labels)
    for _attempt in range(20):
        shards: list[list[int]] = [[] for _ in range(num_parties)]
        for class_id in classes:
            idx = np.nonzero(labels == class_id)[0]
            idx = rng.permutation(idx)
            proportions = rng.dirichlet(np.full(num_parties, alpha))
            cuts = (np.cumsum(proportions)[:-1] * idx.size).astype(int)
            for party, piece in enumerate(np.split(idx, cuts)):
                shards[party].extend(piece.tolist())
        sizes = [len(s) for s in shards]
        if min(sizes) >= min_samples_per_party:
            return [np.array(sorted(s)) for s in shards]
    # Fallback: move samples from the largest shards into deficient ones.
    order = np.argsort(sizes)
    for poor in order:
        while len(shards[poor]) < min_samples_per_party:
            rich = int(np.argmax([len(s) for s in shards]))
            shards[poor].append(shards[rich].pop())
    return [np.array(sorted(s)) for s in shards]


def shift_prior(prior: np.ndarray, alpha: float, rng: np.random.Generator,
                blend: float = 1.0) -> np.ndarray:
    """Resample a label prior for a label-shift event.

    Draws a fresh Dir(alpha) prior and blends it with the old one; with
    ``blend=1`` the new prior fully replaces the old (abrupt shift), smaller
    values model gradual drift.
    """
    if not 0.0 < blend <= 1.0:
        raise ValueError("blend must be in (0, 1]")
    prior = normalize_histogram(np.asarray(prior, dtype=np.float64))
    fresh = rng.dirichlet(np.full(prior.size, alpha))
    mixed = (1.0 - blend) * prior + blend * fresh
    return normalize_histogram(mixed)
