"""Class-template synthetic image generator.

Each class is defined by a fixed spatial template — a mixture of Gaussian
bumps plus an oriented sinusoidal texture, both drawn once per domain seed.
Samples are templates plus per-sample pixel noise, brightness jitter and
small translations.  This gives a dataset where:

* ``P(Y|X)`` is stable and learnable (classes are visually distinct);
* corruptions (fog, blur, noise, ...) move ``P(X)`` without changing class
  semantics — exactly the covariate-shift regime of the -C benchmarks;
* label priors can be skewed per party/window to create label shift.

Images are float arrays in [0, 1] with shape (n, channels, size, size).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class ImageDomainSpec:
    """Configuration of a synthetic image domain."""

    num_classes: int
    image_size: int = 12
    channels: int = 1
    bumps_per_class: int = 3
    noise_scale: float = 0.10
    brightness_jitter: float = 0.08
    max_translation: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        if self.image_size < 4:
            raise ValueError("image_size must be at least 4")
        if self.channels not in (1, 3):
            raise ValueError("channels must be 1 or 3")

    @property
    def input_shape(self) -> tuple[int, int, int]:
        return (self.channels, self.image_size, self.image_size)


def _class_template(spec: ImageDomainSpec, class_id: int,
                    rng: np.random.Generator) -> np.ndarray:
    """Build the (channels, size, size) template for one class."""
    size = spec.image_size
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    canvas = np.zeros((size, size))
    for _ in range(spec.bumps_per_class):
        cy, cx = rng.uniform(1.5, size - 2.5, size=2)
        sigma = rng.uniform(size * 0.10, size * 0.22)
        amp = rng.uniform(0.55, 1.0)
        canvas += amp * np.exp(-((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma ** 2))
    # Oriented sinusoidal texture, class-specific frequency and phase.
    theta = rng.uniform(0, np.pi)
    freq = rng.uniform(0.5, 1.4) * 2 * np.pi / size * (1 + class_id % 3)
    phase = rng.uniform(0, 2 * np.pi)
    texture = 0.25 * np.sin(freq * (xx * np.cos(theta) + yy * np.sin(theta)) + phase)
    canvas = canvas + texture
    canvas -= canvas.min()
    peak = canvas.max()
    if peak > 0:
        canvas /= peak
    canvas = 0.15 + 0.7 * canvas  # keep head-room for corruption operators
    if spec.channels == 1:
        return canvas[None, :, :]
    # Three-channel variant: per-channel gains so colour jitter is meaningful.
    gains = rng.uniform(0.6, 1.0, size=3)
    return np.stack([canvas * g for g in gains], axis=0)


class SyntheticImageGenerator:
    """Samples labelled images from a fixed synthetic domain."""

    def __init__(self, spec: ImageDomainSpec) -> None:
        self.spec = spec
        template_rng = spawn_rng(spec.seed, "image-domain-templates")
        self.templates = np.stack(
            [_class_template(spec, c, template_rng) for c in range(spec.num_classes)]
        )

    def sample_class(self, class_id: int, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` images of a single class."""
        if not 0 <= class_id < self.spec.num_classes:
            raise ValueError(f"class_id {class_id} out of range")
        if n < 0:
            raise ValueError("n must be non-negative")
        spec = self.spec
        base = np.repeat(self.templates[class_id][None], n, axis=0)
        if spec.max_translation > 0 and n > 0:
            shifts = rng.integers(-spec.max_translation, spec.max_translation + 1,
                                  size=(n, 2))
            for i, (dy, dx) in enumerate(shifts):
                if dy or dx:
                    base[i] = np.roll(base[i], (int(dy), int(dx)), axis=(1, 2))
        noise = rng.normal(0.0, spec.noise_scale, size=base.shape)
        brightness = rng.normal(0.0, spec.brightness_jitter, size=(n, 1, 1, 1))
        return np.clip(base + noise + brightness, 0.0, 1.0)

    def sample(self, labels: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw one image per entry of ``labels`` (vectorized by class)."""
        labels = np.asarray(labels)
        out = np.empty((labels.size, *self.spec.input_shape))
        for class_id in np.unique(labels):
            idx = np.nonzero(labels == class_id)[0]
            out[idx] = self.sample_class(int(class_id), idx.size, rng)
        return out

    def sample_dataset(self, label_prior: np.ndarray, n: int,
                       rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` labelled images with classes ~ ``label_prior``."""
        prior = np.asarray(label_prior, dtype=np.float64)
        if prior.shape != (self.spec.num_classes,):
            raise ValueError(
                f"label_prior must have shape ({self.spec.num_classes},); got {prior.shape}"
            )
        labels = rng.choice(self.spec.num_classes, size=n, p=prior / prior.sum())
        return self.sample(labels, rng), labels
