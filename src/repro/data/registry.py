"""Dataset specs and per-window shift schedules for the five simulated corpora.

Each spec mirrors one of the paper's evaluation datasets (Section 6):

=================  ======================  =========================================
Spec               Paper dataset           Shift character
=================  ======================  =========================================
fmow_sim           FMoW                    natural covariate (weather/region) +
                                           label shift, tumbling windows, 50 parties
tiny_imagenet_c    Tiny-ImageNet-C         fresh corruption group per window,
                                           tumbling windows, 200 parties
cifar10_c_sim      CIFAR-10-C              recurring weather corruption, sliding
                                           windows, 200 parties
femnist_sim        FEMNIST                 cyclic transform shifts + Dirichlet label
                                           shift, sliding windows, 200 parties
fashion_mnist_sim  Fashion-MNIST           mixed/repeating transform shifts + label
                                           shift, sliding windows, 200 parties
=================  ======================  =========================================

Every window after W0 shifts 50 % of the parties to the window's regime
("In each window, 50% of the participating clients retain their previous
data distribution, while the remaining 50% receive a new distribution").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.data.corruptions import CORRUPTIONS
from repro.data.drift import CohortDrift, validate_drift_plan
from repro.data.partition import dirichlet_label_priors, shift_prior
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class RegimeAssignment:
    """A party's covariate regime in one window."""

    corruption: str
    severity: int
    regime_id: int

    def __post_init__(self) -> None:
        if self.corruption not in CORRUPTIONS:
            raise ValueError(f"unknown corruption '{self.corruption}'")


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a simulated federated dataset.

    ``drift`` optionally replaces the legacy every-window 50 %-jump shift
    assignment with a declarative per-cohort schedule (see
    :mod:`repro.data.drift`): each :class:`~repro.data.drift.CohortDrift`
    entry claims a seeded slice of the population and describes *how* its
    shift arrives (sudden / gradual / recurring / class-incremental, with
    per-party phase offsets).  The default empty tuple keeps the historical
    ``window_regimes``-driven schedule bit for bit; when ``drift`` is
    non-empty, ``window_regimes`` is ignored by the schedule builder (it
    still sizes validation, so compilers synthesize a placeholder).
    """

    name: str
    paper_name: str
    num_classes: int
    image_size: int
    channels: int
    num_parties: int
    num_windows: int  # includes the W0 burn-in window
    model_name: str
    windowing: str  # "tumbling" | "sliding"
    window_regimes: tuple[tuple[str, int], ...]  # (corruption, severity) for W1..
    shift_fraction: float = 0.5
    label_shift: bool = False
    dirichlet_alpha: float = 1.0  # base non-IID skew of party priors
    label_shift_alpha: float = 0.5  # skew of post-shift priors
    train_per_window: int = 48
    test_per_window: int = 24
    domain_noise_scale: float = 0.22  # per-sample pixel noise of the image domain
    seed: int = 7
    drift: tuple[CohortDrift, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "drift", tuple(
            CohortDrift.from_value(d) for d in self.drift))
        validate_drift_plan(self.drift, num_windows=self.num_windows)
        if self.windowing not in ("tumbling", "sliding"):
            raise ValueError("windowing must be 'tumbling' or 'sliding'")
        if len(self.window_regimes) != self.num_windows - 1:
            raise ValueError(
                f"{self.name}: need {self.num_windows - 1} window regimes, "
                f"got {len(self.window_regimes)}"
            )
        if not 0.0 < self.shift_fraction <= 1.0:
            raise ValueError("shift_fraction must be in (0, 1]")
        for corruption, severity in self.window_regimes:
            if corruption not in CORRUPTIONS:
                raise ValueError(f"unknown corruption '{corruption}'")
            if not 1 <= severity <= 5:
                raise ValueError("severity must be 1..5")

    @property
    def input_shape(self) -> tuple[int, int, int]:
        return (self.channels, self.image_size, self.image_size)

    def scaled(self, num_parties: int | None = None, train_per_window: int | None = None,
               test_per_window: int | None = None, seed: int | None = None) -> "DatasetSpec":
        """Return a resized copy (used by the ``ci`` scale profile)."""
        return replace(
            self,
            num_parties=num_parties if num_parties is not None else self.num_parties,
            train_per_window=(train_per_window if train_per_window is not None
                              else self.train_per_window),
            test_per_window=(test_per_window if test_per_window is not None
                             else self.test_per_window),
            seed=seed if seed is not None else self.seed,
        )


@dataclass
class ShiftSchedule:
    """Ground-truth regime and prior assignments per window and party."""

    spec: DatasetSpec
    regimes: list[list[RegimeAssignment]] = field(default_factory=list)
    label_priors: list[np.ndarray] = field(default_factory=list)
    shifted_parties: list[set[int]] = field(default_factory=list)

    def regime_of(self, window: int, party: int) -> RegimeAssignment:
        return self.regimes[window][party]

    def prior_of(self, window: int, party: int) -> np.ndarray:
        return self.label_priors[window][party]

    def parties_shifted_at(self, window: int) -> set[int]:
        """Parties whose distribution changed entering ``window`` (empty for W0)."""
        return set(self.shifted_parties[window])

    def distinct_regimes_up_to(self, window: int) -> set[int]:
        seen: set[int] = set()
        for w in range(window + 1):
            seen.update(r.regime_id for r in self.regimes[w])
        return seen


_CLEAN = ("identity", 1)


def build_shift_schedule(spec: DatasetSpec) -> ShiftSchedule:
    """Materialize the per-window regime/prior assignment for a spec.

    Window 0 is the clean burn-in window.  Entering each later window ``w``,
    a fraction ``shift_fraction`` of parties adopts the window's regime
    ``spec.window_regimes[w-1]`` (and, when ``label_shift`` is set, a freshly
    skewed label prior); the rest keep their previous assignment.  Regime ids
    are shared across windows for identical (corruption, severity) pairs, so
    recurring regimes are *the same regime* — the hook for expert reuse.

    When ``spec.drift`` is non-empty the legacy assignment above is replaced
    wholesale by the declarative per-cohort schedule (see
    :func:`build_drift_schedule`); registered datasets never set ``drift``,
    so their schedules are bit-for-bit the historical ones.
    """
    if spec.drift:
        return build_drift_schedule(spec)
    rng = spawn_rng(spec.seed, "schedule", spec.name)
    regime_ids: dict[tuple[str, int], int] = {_CLEAN: 0}

    def assignment(corruption: str, severity: int) -> RegimeAssignment:
        key = (corruption, severity)
        if key not in regime_ids:
            regime_ids[key] = len(regime_ids)
        return RegimeAssignment(corruption, severity, regime_ids[key])

    schedule = ShiftSchedule(spec=spec)
    base_priors = dirichlet_label_priors(
        spec.num_parties, spec.num_classes, spec.dirichlet_alpha, rng
    )
    current_regimes = [assignment(*_CLEAN) for _ in range(spec.num_parties)]
    current_priors = base_priors.copy()
    schedule.regimes.append(list(current_regimes))
    schedule.label_priors.append(current_priors.copy())
    schedule.shifted_parties.append(set())

    for window in range(1, spec.num_windows):
        corruption, severity = spec.window_regimes[window - 1]
        window_regime = assignment(corruption, severity)
        n_shift = max(1, int(round(spec.shift_fraction * spec.num_parties)))
        shifted = rng.choice(spec.num_parties, size=n_shift, replace=False)
        shifted_set = {int(p) for p in shifted}
        for party in shifted_set:
            current_regimes[party] = window_regime
            if spec.label_shift:
                current_priors[party] = shift_prior(
                    current_priors[party], spec.label_shift_alpha, rng
                )
        schedule.regimes.append(list(current_regimes))
        schedule.label_priors.append(current_priors.copy())
        schedule.shifted_parties.append(shifted_set)
    return schedule


def _masked_prior(prior: np.ndarray, class_order: list[int],
                  allowed: int) -> np.ndarray:
    """Restrict a label prior to the first ``allowed`` classes of a cohort's
    seeded class order (class-incremental arrival), renormalized."""
    mask = np.zeros_like(prior)
    mask[class_order[:allowed]] = 1.0
    masked = prior * mask
    total = masked.sum()
    if total <= 0.0:
        return mask / mask.sum()
    return masked / total


def build_drift_schedule(spec: DatasetSpec) -> ShiftSchedule:
    """Materialize a declarative per-cohort drift schedule (``spec.drift``).

    Cohorts are carved from one seeded permutation of the population in
    declaration order (each entry claims ``round(fraction * num_parties)``
    parties, at least one); leftover parties stay clean for the whole run.
    Each member draws a phase offset in ``[0, max_phase_offset]`` and
    experiences its cohort's trajectory that many windows late, so clients
    drift at different times.  Regime ids are shared across windows and
    cohorts for identical ``(corruption, severity)`` pairs — a recurring
    regime is *the same regime* every time it returns (the expert-reuse
    hook), exactly as in the legacy schedule.

    ``shifted_parties[w]`` is semantic, not cosmetic: a party counts as
    shifted entering ``w`` iff its regime id or label prior actually
    changed, so sudden cohorts surface once, gradual cohorts surface at
    every ramp step, and recurring cohorts surface at every phase flip.
    """
    rng = spawn_rng(spec.seed, "drift-schedule", spec.name)
    regime_ids: dict[tuple[str, int], int] = {_CLEAN: 0}

    def assignment(corruption: str, severity: int) -> RegimeAssignment:
        key = (corruption, severity)
        if key not in regime_ids:
            regime_ids[key] = len(regime_ids)
        return RegimeAssignment(corruption, severity, regime_ids[key])

    base_priors = dirichlet_label_priors(
        spec.num_parties, spec.num_classes, spec.dirichlet_alpha, rng
    )
    order = [int(p) for p in rng.permutation(spec.num_parties)]

    # party -> (drift entry, seeded class order, phase offset)
    rules: dict[int, tuple[CohortDrift, list[int], int]] = {}
    pos = 0
    for entry in spec.drift:
        size = max(1, int(round(entry.fraction * spec.num_parties)))
        members = order[pos:pos + size]
        pos += len(members)
        class_order = [int(c) for c in rng.permutation(spec.num_classes)]
        for party in members:
            offset = (int(rng.integers(0, entry.max_phase_offset + 1))
                      if entry.max_phase_offset > 0 else 0)
            rules[party] = (entry, class_order, offset)

    clean = assignment(*_CLEAN)
    schedule = ShiftSchedule(spec=spec)
    schedule.regimes.append([clean] * spec.num_parties)
    schedule.label_priors.append(base_priors.copy())
    schedule.shifted_parties.append(set())

    for window in range(1, spec.num_windows):
        regimes: list[RegimeAssignment] = []
        priors = base_priors.copy()
        shifted: set[int] = set()
        for party in range(spec.num_parties):
            rule = rules.get(party)
            if rule is None:
                regimes.append(clean)
                continue
            entry, class_order, offset = rule
            effective = window - offset
            regime = assignment(*entry.regime_at(effective))
            regimes.append(regime)
            allowed = entry.allowed_classes(effective, spec.num_classes)
            if allowed is not None:
                priors[party] = _masked_prior(base_priors[party],
                                              class_order, allowed)
            prev = schedule.regimes[window - 1][party]
            prev_prior = schedule.label_priors[window - 1][party]
            if (regime.regime_id != prev.regime_id
                    or not np.array_equal(priors[party], prev_prior)):
                shifted.add(party)
        schedule.regimes.append(regimes)
        schedule.label_priors.append(priors)
        schedule.shifted_parties.append(shifted)
    return schedule


_SPECS: dict[str, DatasetSpec] = {}


def _register(spec: DatasetSpec) -> DatasetSpec:
    if spec.name in _SPECS:
        raise ValueError(f"duplicate dataset spec '{spec.name}'")
    _SPECS[spec.name] = spec
    return spec


# --- FMoW: 4 evaluation windows, natural covariate + label shift, 50 parties.
# Distinct weather/terrain regimes per window -> the registry grows to ~5
# experts by W4 (paper Fig. 7a).
_register(DatasetSpec(
    name="fmow_sim",
    paper_name="FMoW",
    num_classes=10,
    image_size=12,
    channels=3,
    num_parties=50,
    num_windows=5,
    model_name="lenet_mini",
    windowing="tumbling",
    window_regimes=(("fog", 4), ("frost", 4), ("contrast", 4), ("rain", 4)),
    label_shift=True,
    dirichlet_alpha=1.0,
    label_shift_alpha=0.6,
    seed=11,
))

# --- Tiny-ImageNet-C: 5 windows, a fresh corruption group per window ->
# experts spread across ~6 regimes by W5 (paper Fig. 7b).
_register(DatasetSpec(
    name="tiny_imagenet_c_sim",
    paper_name="Tiny-ImageNet-C",
    num_classes=10,
    image_size=12,
    channels=3,
    num_parties=200,
    num_windows=6,
    model_name="lenet_mini",
    windowing="tumbling",
    window_regimes=(("contrast", 4), ("defocus_blur", 5), ("fog", 4),
                    ("pixelate", 5), ("frost", 4)),
    label_shift=False,
    dirichlet_alpha=2.0,
    seed=13,
))

# --- CIFAR-10-C: weather corruptions only, and the *same* regime recurs every
# window -> parties consolidate onto a second expert (paper Fig. 7c shows a
# compact two-expert configuration).
_register(DatasetSpec(
    name="cifar10_c_sim",
    paper_name="CIFAR-10-C",
    num_classes=10,
    image_size=12,
    channels=3,
    num_parties=200,
    num_windows=5,
    model_name="lenet_mini",
    windowing="sliding",
    window_regimes=(("fog", 4), ("fog", 4), ("fog", 4), ("fog", 4)),
    label_shift=False,
    dirichlet_alpha=2.0,
    seed=17,
))

# --- FEMNIST: transform shifts cycle with reuse + Dirichlet label shift
# (paper Fig. 8a: five experts with reuse over time).
_register(DatasetSpec(
    name="femnist_sim",
    paper_name="FEMNIST",
    num_classes=10,
    image_size=12,
    channels=1,
    num_parties=200,
    num_windows=6,
    model_name="lenet_mini",
    windowing="sliding",
    window_regimes=(("rotation", 5), ("translate", 3), ("color_jitter", 5),
                    ("rotation", 5), ("pixelate", 5)),
    label_shift=True,
    dirichlet_alpha=0.8,
    label_shift_alpha=0.5,
    seed=19,
))

# --- Fashion-MNIST: repeating transform shifts -> jump, re-consolidate,
# redistribute (paper Fig. 8b's cyclical pattern).
_register(DatasetSpec(
    name="fashion_mnist_sim",
    paper_name="Fashion-MNIST",
    num_classes=10,
    image_size=12,
    channels=1,
    num_parties=200,
    num_windows=6,
    model_name="lenet_mini",
    windowing="sliding",
    window_regimes=(("rotation", 5), ("translate", 4), ("rotation", 5),
                    ("rotation", 5), ("scale_jitter", 5)),
    label_shift=True,
    dirichlet_alpha=0.8,
    label_shift_alpha=0.5,
    seed=23,
))


def dataset_names() -> tuple[str, ...]:
    return tuple(_SPECS)


def get_dataset_spec(name: str) -> DatasetSpec:
    if name not in _SPECS:
        raise KeyError(f"unknown dataset '{name}'; available: {sorted(_SPECS)}")
    return _SPECS[name]
