"""Party-side shift detection (Algorithm 1).

Each party embeds its current window through the frozen encoder, estimates
its covariate profile (a subsample of embeddings) and normalized label
histogram, and — when a previous window exists — computes

* ``delta_cov`` — class-conditional MMD between the current and previous
  windows' embeddings.  Conditioning on the party's *own* labels (which
  never leave the device) removes label-composition sampling noise from the
  covariate statistic; pure-``P(Y)`` movement is the JSD detector's job.
* ``delta_label = JSD(y_t, y_{t-1})`` over normalized label histograms.

Only ``{P_t(X), y_t, delta_cov, delta_label}`` leave the party — embeddings,
a histogram, and two scalars, exactly the transmit set of Algorithm 1.

The encoder is the bootstrap global model frozen after W0; a fixed encoder
keeps MMD scores comparable across windows and experts (the paper's
acknowledged "reliance on frozen encoders" design point).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.divergence import jsd
from repro.detection.mmd import class_conditional_mmd
from repro.federation.party import Party
from repro.utils.params import Params


@dataclass
class PartyShiftReport:
    """What one party transmits to the aggregator at a window boundary.

    ``labels`` class-tags the embedding rows so the aggregator's latent-
    memory matching can be class-conditional (the same granularity as the
    label histogram the party already reports; sealed in-enclave under TEE
    mode).
    """

    party_id: int
    embeddings: np.ndarray  # subsampled P_t(X), shape (m, d)
    labels: np.ndarray  # class tags of the embedding rows, shape (m,)
    label_histogram: np.ndarray  # normalized y_t
    delta_cov: float
    delta_label: float

    @property
    def centroid(self) -> np.ndarray:
        return self.embeddings.mean(axis=0)


@dataclass
class PartyLocalState:
    """Statistics a party keeps on-device between windows (O(m*d) storage)."""

    embeddings: np.ndarray
    labels: np.ndarray
    histogram: np.ndarray


def compute_party_report(party: Party, encoder_params: Params,
                         prev_state: PartyLocalState | None,
                         gamma: float | None = None,
                         max_samples: int = 48,
                         stat_dtype: np.dtype | str | None = None,
                         ) -> tuple[PartyShiftReport, PartyLocalState]:
    """Run Algorithm 1 for one party.

    Returns the transmit report plus the party's refreshed local state
    (current embeddings/labels/histogram, retained for the next window's
    deltas).  When ``prev_state`` is absent (first window) both deltas are
    zero, as in the algorithm.

    ``stat_dtype`` is the detection island's dtype (the run's
    ``precision.detection_stats``): embeddings are cast to it here, at the
    reporting boundary, so every downstream statistic — MMD deltas,
    clustering, latent-memory matching — runs at that precision regardless
    of the model plane's dtype.  ``None`` keeps the encoder's dtype; a
    float64 cast of float64 embeddings is a no-op, which is what keeps the
    legacy all-float64 plane bitwise unchanged.
    """
    embeddings, labels = party.embeddings_with_labels(
        encoder_params, split="train", max_samples=max_samples
    )
    if stat_dtype is not None:
        embeddings = np.asarray(embeddings, dtype=stat_dtype)
    histogram = party.label_histogram()
    if prev_state is not None:
        delta_cov = class_conditional_mmd(
            embeddings, labels, prev_state.embeddings, prev_state.labels, gamma
        )
        delta_label = jsd(histogram, prev_state.histogram)
    else:
        delta_cov = 0.0
        delta_label = 0.0
    report = PartyShiftReport(
        party_id=party.party_id,
        embeddings=embeddings,
        labels=labels,
        label_histogram=histogram,
        delta_cov=float(delta_cov),
        delta_label=float(delta_label),
    )
    state = PartyLocalState(
        embeddings=embeddings,
        labels=labels,
        histogram=histogram,
    )
    return report, state
