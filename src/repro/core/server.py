"""ShiftEx aggregator-side orchestration (Algorithm 2).

Window life cycle:

* ``start_window(0)`` — bootstrap: fit FLIPS on party label histograms.
* ``run_round(0, r)`` — train the single bootstrap expert with FLIPS-balanced
  participant selection.
* ``end_window(0)`` — freeze the encoder (the trained bootstrap model), seed
  expert 0's latent memory, calibrate ``delta_cov`` / ``delta_label`` from
  bootstrap null distributions, snapshot party statistics.
* ``start_window(w >= 1)`` — Algorithm 2's shift response: collect party
  reports (Algorithm 1), threshold them into the shifted set, K-means the
  shifted parties on latent centroids (Davies–Bouldin-selected k), then per
  cluster: latent-memory match -> reuse expert, else clone the bootstrap
  model into a new expert; clusters smaller than ``gamma`` fine-tune locally
  instead.  Finally, consolidate experts whose parameters exceed cosine
  similarity ``tau``.
* ``run_round(w, r)`` — each expert trains on its cohort with FLIPS-balanced
  selection under a shared participant budget.
* ``end_window(w)`` — update expert memories with cohort embeddings and
  snapshot party statistics for the next window's deltas.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ShiftExConfig
from repro.core.detector import PartyLocalState, PartyShiftReport, compute_party_report
from repro.clustering.selection import select_num_clusters
from repro.detection.calibration import CalibratedThresholds, ThresholdCalibrator
from repro.experiments.registry import register_strategy
from repro.experts.consolidation import consolidate_experts
from repro.experts.matching import WindowMatchScorer, match_cluster_to_expert
from repro.experts.registry import ExpertRegistry
from repro.federation.rounds import run_fl_round
from repro.federation.strategy import ContinualStrategy, StrategyContext
from repro.flips.selector import FlipsSelector
from repro.utils.params import Params


def split_budget(cohort_sizes: dict[int, int], total: int) -> dict[int, int]:
    """Split a participant budget across cohorts proportionally (min 1 each)."""
    sizes = {k: s for k, s in cohort_sizes.items() if s > 0}
    if not sizes:
        return {}
    n = sum(sizes.values())
    budget = {k: max(1, int(round(total * s / n))) for k, s in sizes.items()}
    return {k: min(b, sizes[k]) for k, b in budget.items()}


@register_strategy("shiftex")
class ShiftExStrategy(ContinualStrategy):
    """The paper's shift-aware mixture-of-experts framework."""

    name = "shiftex"

    def __init__(self, config: ShiftExConfig | None = None) -> None:
        super().__init__()
        self.config = config if config is not None else ShiftExConfig()
        self.registry = ExpertRegistry(
            memory_capacity=self.config.memory_capacity,
            memory_eta=self.config.memory_eta,
        )
        self.assignments: dict[int, int] = {}
        self._finetuned: dict[int, Params] = {}
        self._encoder: Params | None = None
        self._bootstrap_snapshot: Params | None = None
        self.thresholds: CalibratedThresholds | None = None
        self._epsilon: float | None = self.config.epsilon
        # Resolved in setup() against the run's threshold table.
        self._tau: float | None = self.config.tau
        self._epsilon_scale: float | None = self.config.epsilon_scale
        self._party_state: dict[int, PartyLocalState] = {}
        self._bootstrap_flips: FlipsSelector | None = None
        self._cohort_flips: dict[int, FlipsSelector] = {}
        self.shift_log: list[dict] = []
        self.assignment_history: dict[int, dict[int, int]] = {}
        self._adapting_experts: set[int] = set()

    # ------------------------------------------------------------------ life cycle

    def setup(self, ctx: StrategyContext) -> None:
        super().setup(ctx)
        # Knobs left at None resolve against the run precision's committed
        # threshold table (the float64 table carries the historical values,
        # so the legacy plane is unchanged); explicit config values win.
        self._tau = (self.config.tau if self.config.tau is not None
                     else ctx.threshold("shiftex.tau", 0.99))
        self._epsilon_scale = (
            self.config.epsilon_scale
            if self.config.epsilon_scale is not None
            else ctx.threshold("shiftex.epsilon_scale", 1.25))
        # Bind the run's sharding before the first expert creates the pool
        # bank; with the default single-shard plan this is a no-op.  The
        # score seal (sealed_scoring) rides along so every cosine/MMD call
        # the registry, matcher, and consolidator make operates on sealed
        # rows — bitwise-identical results, no plaintext stacks.
        self.registry.shard_plan = ctx.shard_plan
        self.registry.score_seal = ctx.score_seal
        theta0 = ctx.model_factory().get_params()
        expert0 = self.registry.create(theta0, window=0, notes={"role": "bootstrap"})
        # Survey order: every party eagerly, a seeded survey subset under a
        # capped pool — ShiftEx tracks per-party expert assignments.
        self.assignments = {pid: expert0.expert_id for pid in ctx.party_ids}

    # -------------------------------------------------- window 0 (bootstrap, 4.1)

    def _fit_bootstrap_flips(self, window: int) -> None:
        ctx = self.context
        histograms = {pid: party.label_histogram()
                      for pid, party in ctx.iter_parties()}
        self._bootstrap_flips = FlipsSelector(
            max_clusters=self.config.flips_max_clusters
        ).fit(histograms, ctx.rng("flips-bootstrap", window))

    # -------------------------------------------------- detection (Alg. 1 driver)

    def _collect_reports(self, window: int) -> dict[int, PartyShiftReport]:
        ctx = self.context
        assert self._encoder is not None
        gamma = self.thresholds.gamma if self.thresholds is not None else None
        reports: dict[int, PartyShiftReport] = {}
        with ctx.profiler.phase("shift_detection"):
            for pid, party in ctx.iter_parties():
                report, state = compute_party_report(
                    party, self._encoder,
                    self._party_state.get(pid),
                    gamma=gamma,
                    max_samples=self.config.embedding_samples,
                    stat_dtype=ctx.precision.np_detection_stats,
                )
                reports[pid] = report
                self._party_state[pid] = state
        sample = next(iter(reports.values()))
        ctx.ledger.record_statistics_upload(
            embedding_rows=sample.embeddings.shape[0],
            embedding_dim=sample.embeddings.shape[1],
            num_classes=ctx.spec.num_classes,
            num_parties=len(reports),
        )
        return reports

    def _shifted_parties(self, reports: dict[int, PartyShiftReport]) -> list[int]:
        assert self.thresholds is not None
        shifted = []
        for pid, report in reports.items():
            cov = report.delta_cov > self.thresholds.delta_cov
            label = (self.config.enable_label_detection
                     and report.delta_label > self.thresholds.delta_label)
            if cov or label:
                shifted.append(pid)
        return sorted(shifted)

    # -------------------------------------------------- Algorithm 2 main body

    def start_window(self, window: int) -> None:
        ctx = self.context
        self._finetuned = {}
        self._cohort_flips = {}
        self._adapting_experts = set()
        if window == 0:
            self._fit_bootstrap_flips(window)
            self.assignment_history[0] = dict(self.assignments)
            return
        if self._encoder is None or self.thresholds is None:
            raise RuntimeError("end_window(0) must run before later windows")

        reports = self._collect_reports(window)
        shifted = self._shifted_parties(reports)
        window_log = {
            "window": window,
            "num_shifted": len(shifted),
            "clusters": [],
            "merges": 0,
        }

        if shifted:
            centroids = np.stack([reports[pid].centroid for pid in shifted])
            with ctx.profiler.phase("clustering"):
                k_cap = min(self.config.k_max, len(shifted))
                _k, clustering, _scores = select_num_clusters(
                    centroids, ctx.rng("cluster", window), k_max=k_cap
                )
                groups = [
                    [shifted[i] for i in clustering.members(cluster_index)]
                    for cluster_index in range(clustering.num_clusters)
                ]
                groups = self._merge_same_regime_clusters(groups, reports)
            large = [g for g in groups
                     if g and len(g) >= self.config.min_cluster_size]
            scorer = self._build_window_scorer(window, large, reports)
            large_seen = 0
            for members in groups:
                if not members:
                    continue
                if len(members) >= self.config.min_cluster_size:
                    self._handle_large_cluster(window, members, reports,
                                               window_log, scorer=scorer,
                                               scorer_index=large_seen)
                    large_seen += 1
                else:
                    self._handle_small_cluster(window, members, window_log)

        if self.config.enable_consolidation and len(self.registry) >= 2:
            with ctx.profiler.phase("consolidation"):
                events = consolidate_experts(
                    self.registry, self._tau, window,
                    ctx.rng("consolidate", window), self.assignments,
                    memory_epsilon=self._epsilon,
                    gamma=self.thresholds.gamma if self.thresholds else None,
                    shards=ctx.shard_plan,
                )
            window_log["merges"] = len(events)
            for event in events:
                if self._adapting_experts & set(event.merged_ids):
                    self._adapting_experts -= set(event.merged_ids)
                    self._adapting_experts.add(event.new_id)

        self._fit_cohort_flips(window)
        self.shift_log.append(window_log)
        self.assignment_history[window] = dict(self.assignments)

    def _merge_same_regime_clusters(self, groups: list[list[int]],
                                    reports: dict[int, PartyShiftReport],
                                    ) -> list[list[int]]:
        """Fuse K-means fragments that represent the same covariate regime.

        Davies-Bouldin model selection can split one regime into several
        clusters when the shifted set is small and noisy; by the system's own
        standard, two clusters whose pooled embeddings are within the reuse
        threshold epsilon describe the same regime and must share one expert.
        Union-find over pairwise pooled MMD collapses such fragments.
        """
        groups = [g for g in groups if g]
        if len(groups) < 2:
            return groups
        assert self._epsilon is not None
        gamma = self.thresholds.gamma if self.thresholds is not None else None
        pooled = [np.vstack([reports[pid].embeddings for pid in g]) for g in groups]
        parent = list(range(len(groups)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        from repro.detection.mmd import class_conditional_mmd
        pooled_labels = [np.concatenate([reports[pid].labels for pid in g])
                         for g in groups]
        for i in range(len(groups)):
            for j in range(i + 1, len(groups)):
                score = class_conditional_mmd(pooled[i], pooled_labels[i],
                                              pooled[j], pooled_labels[j], gamma)
                if score <= self._epsilon:
                    parent[find(j)] = find(i)
        merged: dict[int, list[int]] = {}
        for i, group in enumerate(groups):
            merged.setdefault(find(i), []).extend(group)
        return [sorted(g) for g in merged.values()]

    def _build_window_scorer(self, window: int, large_groups: list[list[int]],
                             reports: dict[int, PartyShiftReport],
                             ) -> WindowMatchScorer | None:
        """One-Gram-per-window batch matcher, gated behind an active plan.

        The default (single-shard) path keeps the historical per-cluster
        scoring byte for byte; with ``shards >= 2`` all of a window's large
        clusters are scored against the expert pool in one stacked kernel
        evaluation (sharded over experts), and per-cluster matching only
        rescores experts whose memory changed earlier in the same window.
        """
        ctx = self.context
        if (not ctx.shard_plan.is_active or not self.config.enable_latent_memory
                or len(large_groups) < 2):
            return None
        gamma = self.thresholds.gamma if self.thresholds is not None else None
        with ctx.profiler.phase("expert_assignment"):
            return WindowMatchScorer(
                self.registry,
                [np.vstack([reports[pid].embeddings for pid in g])
                 for g in large_groups],
                [np.concatenate([reports[pid].labels for pid in g])
                 for g in large_groups],
                gamma=gamma,
                max_rows=self.config.memory_capacity,
                rngs=[ctx.rng("match", window, g[0]) for g in large_groups],
                shards=ctx.shard_plan,
            )

    def _handle_large_cluster(self, window: int, members: list[int],
                              reports: dict[int, PartyShiftReport],
                              window_log: dict,
                              scorer: WindowMatchScorer | None = None,
                              scorer_index: int = 0) -> None:
        """Match the cluster to an expert or create a new one (Alg. 2 l.13-26)."""
        ctx = self.context
        pooled = np.vstack([reports[pid].embeddings for pid in members])
        pooled_labels = np.concatenate([reports[pid].labels for pid in members])
        gamma = self.thresholds.gamma if self.thresholds is not None else None
        assert self._epsilon is not None
        matched_id: int | None = None
        if self.config.enable_latent_memory:
            with ctx.profiler.phase("expert_assignment"):
                if scorer is not None:
                    match = scorer.match(scorer_index, self._epsilon)
                else:
                    match = match_cluster_to_expert(
                        pooled, self.registry, self._epsilon, gamma,
                        max_rows=self.config.memory_capacity,
                        rng=ctx.rng("match", window, members[0]),
                        cluster_labels=pooled_labels,
                        shards=ctx.shard_plan,
                    )
            if match.matched:
                matched_id = match.expert_id
        if matched_id is not None:
            expert = self.registry.get(matched_id)
            expert.memory.update(pooled, ctx.rng("memory", window, matched_id),
                                 labels=pooled_labels)
            expert.updated_window = window
            action = "reuse"
        else:
            init = self._new_expert_init()
            with ctx.profiler.phase("expert_creation"):
                expert = self.registry.create(
                    init, window,
                    embeddings=pooled,
                    labels=pooled_labels,
                    rng=ctx.rng("memory-new", window, len(self.registry)),
                    notes={"source": "shift", "window": window},
                )
            action = "create"
        for pid in members:
            self.assignments[pid] = expert.expert_id
        self._adapting_experts.add(expert.expert_id)
        window_log["clusters"].append({
            "size": len(members),
            "action": action,
            "expert": expert.expert_id,
        })

    def _handle_small_cluster(self, window: int, members: list[int],
                              window_log: dict) -> None:
        """Clusters below gamma fine-tune their assigned expert locally."""
        ctx = self.context
        from dataclasses import replace
        finetune_config = replace(
            ctx.round_config.local,
            epochs=self.config.finetune_epochs,
            prox_mu=0.0,
        )
        for pid in members:
            expert = self.registry.get(self.assignments[pid])
            update = ctx.parties[pid].local_train(
                expert.clone_params(), finetune_config,
                round_tag=("finetune", window),
            )
            self._finetuned[pid] = update.params
        window_log["clusters"].append({
            "size": len(members),
            "action": "finetune",
            "expert": None,
        })

    def _new_expert_init(self) -> Params:
        """CLONE(theta_0): new experts start from the bootstrap model."""
        if self._bootstrap_snapshot is not None:
            return [p.copy() for p in self._bootstrap_snapshot]
        return self.context.model_factory().get_params()

    # -------------------------------------------------- per-expert FLIPS (5.2.3-4)

    def _cohorts(self) -> dict[int, list[int]]:
        cohorts: dict[int, list[int]] = {eid: [] for eid in self.registry.ids()}
        for pid, eid in self.assignments.items():
            cohorts.setdefault(eid, []).append(pid)
        return {eid: sorted(members) for eid, members in cohorts.items() if members}

    def _fit_cohort_flips(self, window: int) -> None:
        ctx = self.context
        if not self.config.enable_flips:
            return
        for eid, members in self._cohorts().items():
            histograms = {pid: ctx.parties[pid].label_histogram() for pid in members}
            self._cohort_flips[eid] = FlipsSelector(
                max_clusters=self.config.flips_max_clusters
            ).fit(histograms, ctx.rng("flips", window, eid))

    # -------------------------------------------------- training rounds

    def run_round(self, window: int, round_index: int) -> None:
        ctx = self.context
        if window == 0:
            self._run_bootstrap_round(window, round_index)
            return
        cohorts = self._cohorts()
        # Experts absorbing this window's shift get the full participant
        # budget: stable cohorts' experts are converged, and retraining them
        # with a sliver of the budget only adds aggregation variance.  When
        # *no* shift fired this window, fall back to standard continual
        # training of every cohort so experts keep tracking their (possibly
        # slowly drifting) regimes.
        adapting = {eid: members for eid, members in cohorts.items()
                    if eid in self._adapting_experts}
        if adapting:
            cohorts = adapting
        budget = split_budget({eid: len(m) for eid, m in cohorts.items()},
                              ctx.round_config.participants_per_round)
        for eid, members in cohorts.items():
            k = budget.get(eid, 0)
            if k <= 0:
                continue
            rng = ctx.rng("select", self.name, window, round_index, eid)
            selector = self._cohort_flips.get(eid)
            if selector is not None and selector.is_fitted:
                participants = selector.select(k, rng, available=set(members))
            else:
                participants = [int(p) for p in rng.choice(members, size=k,
                                                           replace=False)]
            if not participants:
                continue
            expert = self.registry.get(eid)
            new_params, stats = run_fl_round(
                ctx.parties, participants, expert.params, ctx.round_config,
                round_tag=(window, round_index, eid),
                engine=ctx.federation, stream=("expert", eid),
                shards=ctx.shard_plan, secure=ctx.masking_spec,
            )
            expert.set_params(new_params)
            expert.train_rounds += 1
            expert.samples_seen += stats.total_samples
            expert.updated_window = window
            num_params = sum(p.size for p in new_params)
            ctx.ledger.record_model_download(num_params, len(participants))
            ctx.ledger.record_model_upload(num_params, len(participants))

    def _run_bootstrap_round(self, window: int, round_index: int) -> None:
        ctx = self.context
        expert0 = self.registry.all()[0]
        k = min(ctx.round_config.participants_per_round, len(ctx.parties))
        rng = ctx.rng("select", self.name, window, round_index)
        if self.config.enable_flips and self._bootstrap_flips is not None:
            participants = self._bootstrap_flips.select(k, rng)
        else:
            participants = ctx.sample_cohort(rng, k)
        new_params, stats = run_fl_round(
            ctx.parties, participants, expert0.params, ctx.round_config,
            round_tag=(window, round_index),
            engine=ctx.federation, stream=("expert", expert0.expert_id),
            shards=ctx.shard_plan, secure=ctx.masking_spec,
        )
        expert0.set_params(new_params)
        expert0.train_rounds += 1
        expert0.samples_seen += stats.total_samples
        num_params = sum(p.size for p in new_params)
        ctx.ledger.record_model_download(num_params, len(participants))
        ctx.ledger.record_model_upload(num_params, len(participants))

    # -------------------------------------------------- window close

    def end_window(self, window: int) -> None:
        ctx = self.context
        if window != 0:
            # Party states were refreshed when this window's reports were
            # collected; nothing further to close out.
            return
        expert0 = self.registry.all()[0]
        self._encoder = expert0.clone_params()
        self._bootstrap_snapshot = expert0.clone_params()
        # First snapshot of party-side state (no reports exist for W0).
        # Embeddings enter the detection island here: cast to the precision
        # plan's detection_stats dtype (a no-op on the float64 legacy plane)
        # so calibration nulls, memories and every later delta are computed
        # at island precision.
        stat_dtype = ctx.precision.np_detection_stats
        for pid, party in ctx.iter_parties():
            embeddings, labels = party.embeddings_with_labels(
                self._encoder, split="train",
                max_samples=self.config.embedding_samples,
            )
            embeddings = np.asarray(embeddings, dtype=stat_dtype)
            self._party_state[pid] = PartyLocalState(
                embeddings=embeddings,
                labels=labels,
                histogram=party.label_histogram(),
            )
        pooled = np.vstack([s.embeddings for s in self._party_state.values()])
        pooled_labels = np.concatenate(
            [s.labels for s in self._party_state.values()])
        expert0.memory.update(pooled, ctx.rng("memory-seed"),
                              labels=pooled_labels)
        with ctx.profiler.phase("calibration"):
            calibrator = ThresholdCalibrator(
                num_bootstrap=self.config.num_bootstrap,
                p_value=self.config.p_value,
            )
            party_pools = [(s.embeddings, s.labels)
                           for s in self._party_state.values()]
            priors = np.stack([s.histogram for s in self._party_state.values()])
            calibrated = calibrator.calibrate(
                party_pools, priors,
                window_sample_size=ctx.spec.train_per_window,
                rng=ctx.rng("calibration"),
                reuse_sample_size=self.config.memory_capacity,
            )
        if self.config.delta_cov is not None or self.config.delta_label is not None:
            calibrated = CalibratedThresholds(
                delta_cov=(self.config.delta_cov
                           if self.config.delta_cov is not None
                           else calibrated.delta_cov),
                delta_label=(self.config.delta_label
                             if self.config.delta_label is not None
                             else calibrated.delta_label),
                gamma=calibrated.gamma,
                p_value=calibrated.p_value,
                epsilon_base=calibrated.epsilon_base,
            )
        self.thresholds = calibrated
        if self._epsilon is None:
            # Matching is class-conditional, so the reuse threshold shares
            # the detection statistic's null scale (delta_cov), widened by
            # epsilon_scale to tolerate latent-memory staleness.
            self._epsilon = calibrated.delta_cov * self._epsilon_scale

    # -------------------------------------------------- inference & reporting

    def params_for_party(self, party_id: int) -> Params:
        if party_id in self._finetuned:
            return self._finetuned[party_id]
        eid = self.assignments.get(party_id)
        if eid is None or eid not in self.registry:
            return self.registry.all()[0].params
        return self.registry.get(eid).params

    def expert_distribution(self) -> dict[int, int]:
        """Expert id -> number of assigned parties (Figures 7-8 series)."""
        counts: dict[int, int] = {eid: 0 for eid in self.registry.ids()}
        for eid in self.assignments.values():
            counts[eid] = counts.get(eid, 0) + 1
        return counts

    def describe_state(self) -> dict:
        return {
            "num_models": len(self.registry),
            "experts_created": self.registry.created_total,
            "experts_merged": self.registry.merged_total,
            "distribution": self.expert_distribution(),
            "delta_cov": None if self.thresholds is None else self.thresholds.delta_cov,
            "delta_label": (None if self.thresholds is None
                            else self.thresholds.delta_label),
            "epsilon": self._epsilon,
        }
