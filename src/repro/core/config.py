"""ShiftEx configuration."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ShiftExConfig:
    """All ShiftEx hyper-parameters, named as in the paper.

    Thresholds ``delta_cov`` / ``delta_label`` default to ``None`` meaning
    *calibrate from bootstrap null distributions* (Section 5); setting them
    explicitly bypasses calibration (used by the threshold-sensitivity
    ablation).  ``epsilon`` is the latent-memory reuse threshold of Section
    5.2.2; when ``None`` it is tied to the calibrated ``delta_cov`` scaled by
    ``epsilon_scale`` (reuse requires the cluster to look *closer* to an
    expert's regime than the shift-detection bar, scaled to tolerate memory
    staleness).

    ``tau`` and ``epsilon_scale`` likewise default to ``None`` meaning
    *resolve from the run precision's committed threshold table* (see
    :mod:`repro.detection.thresholds`; the float64 table carries the
    historical 0.99 / 1.25).  Setting either explicitly bypasses the table.
    """

    # Detection thresholds (Section 5).
    delta_cov: float | None = None
    delta_label: float | None = None
    p_value: float = 0.02
    num_bootstrap: int = 100

    # Expert matching and consolidation (Sections 5.2.2, 5.2.5).
    epsilon: float | None = None
    epsilon_scale: float | None = None  # None = the precision's table value
    tau: float | None = None  # None = the precision's table value

    # Clustering of shifted parties (Section 5.2.1).
    k_max: int = 6
    min_cluster_size: int = 3  # the paper's gamma

    # Latent memory (Section 5.2.2).
    memory_capacity: int = 64
    memory_eta: float = 0.3

    # Party-side reporting (Algorithm 1).
    embedding_samples: int = 48  # max embeddings a party reports per window

    # FLIPS participant selection.
    flips_max_clusters: int = 4

    # Local fine-tuning for small clusters (Section 5.2.3).
    finetune_epochs: int = 2

    # Feature toggles for ablations.
    enable_latent_memory: bool = True
    enable_consolidation: bool = True
    enable_flips: bool = True
    enable_label_detection: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.p_value < 1.0:
            raise ValueError("p_value must be in (0, 1)")
        if self.num_bootstrap <= 0:
            raise ValueError("num_bootstrap must be positive")
        if self.epsilon is not None and self.epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if self.epsilon_scale is not None and self.epsilon_scale <= 0:
            raise ValueError("epsilon_scale must be positive")
        if self.tau is not None and not -1.0 <= self.tau <= 1.0:
            raise ValueError("tau must be a valid cosine bound")
        if self.k_max < 1:
            raise ValueError("k_max must be at least 1")
        if self.min_cluster_size < 1:
            raise ValueError("min_cluster_size must be at least 1")
        if self.embedding_samples < 2:
            raise ValueError("embedding_samples must be at least 2")
        if self.finetune_epochs < 0:
            raise ValueError("finetune_epochs must be non-negative")
