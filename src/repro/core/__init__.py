"""ShiftEx: the paper's shift-aware mixture-of-experts framework.

* :class:`~repro.core.config.ShiftExConfig` — all knobs (thresholds, epsilon,
  tau, gamma, latent-memory and FLIPS parameters);
* :mod:`~repro.core.detector` — party-side shift detection (Algorithm 1);
* :class:`~repro.core.server.ShiftExStrategy` — aggregator-side orchestration
  (Algorithm 2): threshold calibration, shifted-party clustering, latent
  memory matching, expert creation/update with FLIPS, local fine-tuning for
  small clusters, and expert consolidation.
"""

from repro.core.config import ShiftExConfig
from repro.core.detector import PartyLocalState, PartyShiftReport, compute_party_report
from repro.core.server import ShiftExStrategy

__all__ = [
    "ShiftExConfig",
    "PartyLocalState",
    "PartyShiftReport",
    "compute_party_report",
    "ShiftExStrategy",
]
