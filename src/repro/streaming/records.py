"""Stream record and window batch types."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class Record:
    """A single timestamped labelled observation."""

    timestamp: float
    x: np.ndarray
    y: int

    def __post_init__(self) -> None:
        if not np.isfinite(self.timestamp):
            raise ValueError("record timestamp must be finite")


@dataclass
class WindowBatch:
    """A materialized window of records, ready for local training."""

    window_id: int
    start: float
    end: float
    records: list[Record] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.records)

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Stack the window into (x, y) arrays; raises when empty."""
        if not self.records:
            raise ValueError(f"window {self.window_id} is empty")
        x = np.stack([r.x for r in self.records])
        y = np.array([r.y for r in self.records])
        return x, y

    def label_histogram(self, num_classes: int) -> np.ndarray:
        """Normalized label histogram of the window."""
        counts = np.zeros(num_classes)
        for record in self.records:
            if not 0 <= record.y < num_classes:
                raise ValueError(f"label {record.y} out of range [0, {num_classes})")
            counts[record.y] += 1
        total = counts.sum()
        if total == 0:
            return np.full(num_classes, 1.0 / num_classes)
        return counts / total
