"""Client-side stream processing substrate.

The paper's parties each run a stream engine (Kafka/Flink) that ingests raw
records and segments them into tumbling or sliding windows before local
training (Sections 1 and 4).  This package implements that substrate:

* :class:`~repro.streaming.windows.TumblingWindowAssigner` /
  :class:`~repro.streaming.windows.SlidingWindowAssigner` — event-time window
  assignment with the standard semantics (tumbling = non-overlapping fixed
  windows; sliding = overlapping windows of ``size`` every ``slide``);
* :class:`~repro.streaming.engine.StreamEngine` — per-party ingest queue with
  watermark-driven window emission and a bounded local store;
* :class:`~repro.streaming.source.ArrayStreamSource` — replays labelled
  arrays as a timestamped record stream (the simulator's data feed).
"""

from repro.streaming.records import Record, WindowBatch
from repro.streaming.windows import (
    WindowAssigner,
    TumblingWindowAssigner,
    SlidingWindowAssigner,
)
from repro.streaming.engine import StreamEngine
from repro.streaming.source import ArrayStreamSource

__all__ = [
    "Record",
    "WindowBatch",
    "WindowAssigner",
    "TumblingWindowAssigner",
    "SlidingWindowAssigner",
    "StreamEngine",
    "ArrayStreamSource",
]
