"""Stream sources: replay labelled arrays as timestamped records."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.streaming.records import Record


class ArrayStreamSource:
    """Replays one or more labelled arrays as an event-time record stream.

    Segments are emitted back-to-back: segment ``i`` occupies event time
    ``[i * segment_duration, (i+1) * segment_duration)`` with its records
    spread uniformly (plus optional jitter).  Feeding each window's data as
    one segment reproduces the simulator's per-window distribution switch as
    a genuine stream.
    """

    def __init__(self, segments: list[tuple[np.ndarray, np.ndarray]],
                 segment_duration: float = 1.0,
                 jitter: float = 0.0,
                 rng: np.random.Generator | None = None) -> None:
        if segment_duration <= 0:
            raise ValueError("segment_duration must be positive")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        for x, y in segments:
            if len(x) != len(y):
                raise ValueError("segment arrays must have matching lengths")
        self.segments = segments
        self.segment_duration = segment_duration
        self.jitter = jitter
        self.rng = rng

    def __iter__(self) -> Iterator[Record]:
        for seg_index, (x, y) in enumerate(self.segments):
            n = len(x)
            if n == 0:
                continue
            base = seg_index * self.segment_duration
            step = self.segment_duration / n
            for i in range(n):
                t = base + i * step
                if self.jitter and self.rng is not None:
                    t += float(self.rng.uniform(0, self.jitter * step))
                # Keep the record inside its segment despite jitter.
                t = min(t, base + self.segment_duration - 1e-9)
                yield Record(timestamp=t, x=np.asarray(x[i]), y=int(y[i]))

    @property
    def total_duration(self) -> float:
        return len(self.segments) * self.segment_duration
