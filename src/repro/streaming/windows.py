"""Event-time window assigners (tumbling and sliding).

Semantics follow the dataflow model the paper cites: a tumbling window of
size ``s`` partitions time into ``[k*s, (k+1)*s)``; a sliding window of size
``s`` and slide ``d`` opens a window at every multiple of ``d`` and each
event belongs to every open window covering its timestamp.  A tumbling
window is the special case ``d == s``.
"""

from __future__ import annotations

import math


class WindowAssigner:
    """Maps an event timestamp to the ids of the windows containing it."""

    def assign(self, timestamp: float) -> list[int]:
        raise NotImplementedError

    def window_bounds(self, window_id: int) -> tuple[float, float]:
        """Return the [start, end) interval of a window."""
        raise NotImplementedError

    def last_closed_window(self, watermark: float) -> int:
        """Highest window id fully covered by ``watermark`` (-1 if none)."""
        raise NotImplementedError


class TumblingWindowAssigner(WindowAssigner):
    """Non-overlapping fixed-size windows."""

    def __init__(self, size: float, offset: float = 0.0) -> None:
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = float(size)
        self.offset = float(offset)

    def assign(self, timestamp: float) -> list[int]:
        return [int(math.floor((timestamp - self.offset) / self.size))]

    def window_bounds(self, window_id: int) -> tuple[float, float]:
        start = self.offset + window_id * self.size
        return start, start + self.size

    def last_closed_window(self, watermark: float) -> int:
        # Window k closes when watermark >= (k+1) * size.
        return int(math.floor((watermark - self.offset) / self.size)) - 1


class SlidingWindowAssigner(WindowAssigner):
    """Overlapping windows of ``size`` opening every ``slide``.

    Window ``k`` covers ``[k*slide, k*slide + size)``.  Requires
    ``slide <= size`` (otherwise records between windows would be dropped).
    """

    def __init__(self, size: float, slide: float, offset: float = 0.0) -> None:
        if size <= 0 or slide <= 0:
            raise ValueError("size and slide must be positive")
        if slide > size:
            raise ValueError("slide must not exceed size (records would be dropped)")
        self.size = float(size)
        self.slide = float(slide)
        self.offset = float(offset)

    def assign(self, timestamp: float) -> list[int]:
        t = timestamp - self.offset
        last = int(math.floor(t / self.slide))
        first = int(math.ceil((t - self.size) / self.slide))
        # Window k contains t iff k*slide <= t < k*slide + size.  Stream time
        # starts at the offset, so ids are clamped to k >= 0 (early elements
        # simply belong to fewer windows).
        first = max(first, 0)
        ids = [k for k in range(first, last + 1)
               if k * self.slide <= t < k * self.slide + self.size]
        return ids

    def window_bounds(self, window_id: int) -> tuple[float, float]:
        start = self.offset + window_id * self.slide
        return start, start + self.size

    def last_closed_window(self, watermark: float) -> int:
        # Window k closes when watermark >= k * slide + size.
        t = watermark - self.offset
        return int(math.floor((t - self.size) / self.slide))
