"""Per-party stream engine: ingest, window, emit.

This is the simulator's stand-in for the Kafka/Flink pipeline each party runs
in the paper.  Records are ingested in event-time order (out-of-order records
are accepted up to the current watermark), buffered into the windows chosen
by the assigner, and emitted as :class:`~repro.streaming.records.WindowBatch`
objects once the watermark passes a window's end.
"""

from __future__ import annotations

from collections import defaultdict

from repro.streaming.records import Record, WindowBatch
from repro.streaming.windows import WindowAssigner


class LateRecordError(ValueError):
    """Raised when a record arrives for a window that was already emitted."""


class StreamEngine:
    """Watermark-driven windowing over a record stream."""

    def __init__(self, assigner: WindowAssigner, max_buffered_windows: int = 64) -> None:
        if max_buffered_windows <= 0:
            raise ValueError("max_buffered_windows must be positive")
        self.assigner = assigner
        self.max_buffered_windows = max_buffered_windows
        self._buffers: dict[int, list[Record]] = defaultdict(list)
        self._watermark = float("-inf")
        self._emitted_through = -1  # highest window id already emitted
        self.records_ingested = 0
        self.records_dropped_late = 0

    @property
    def watermark(self) -> float:
        return self._watermark

    def ingest(self, record: Record, strict: bool = False) -> None:
        """Add a record to all windows containing its timestamp.

        Records older than an already-emitted window are dropped (counted in
        ``records_dropped_late``) unless ``strict`` is set, in which case a
        :class:`LateRecordError` is raised.
        """
        window_ids = self.assigner.assign(record.timestamp)
        live_ids = [w for w in window_ids if w > self._emitted_through]
        if not live_ids:
            if strict:
                raise LateRecordError(
                    f"record at t={record.timestamp} is older than emitted windows"
                )
            self.records_dropped_late += 1
            return
        if len(self._buffers) + len(live_ids) > self.max_buffered_windows * 2:
            raise RuntimeError(
                "stream engine buffer overflow; advance the watermark more often"
            )
        for window_id in live_ids:
            self._buffers[window_id].append(record)
        self.records_ingested += 1

    def advance_watermark(self, watermark: float) -> list[WindowBatch]:
        """Move event time forward and emit every window now closed."""
        if watermark < self._watermark:
            raise ValueError("watermark must be monotonically non-decreasing")
        self._watermark = watermark
        closed_through = self.assigner.last_closed_window(watermark)
        emitted: list[WindowBatch] = []
        for window_id in sorted(w for w in self._buffers if w <= closed_through):
            start, end = self.assigner.window_bounds(window_id)
            emitted.append(WindowBatch(
                window_id=window_id,
                start=start,
                end=end,
                records=sorted(self._buffers.pop(window_id),
                               key=lambda r: r.timestamp),
            ))
        if closed_through > self._emitted_through:
            self._emitted_through = closed_through
        return emitted

    def pending_windows(self) -> list[int]:
        """Window ids currently buffered but not yet closed."""
        return sorted(self._buffers)
