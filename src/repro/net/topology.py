"""Declarative shard topology: hosts × roles from a TOML/JSON file.

A topology file names every machine in a multi-host run and what it does::

    # topology.toml
    [[hosts]]
    address = "10.0.0.11:7700"
    role = "shards"

    [[hosts]]
    address = "10.0.0.12:7700"
    role = "shards"

    [[hosts]]
    address = "10.0.0.10:7700"
    role = "coordinator"

Only ``role = "shards"`` hosts receive shard mirrors; ``coordinator`` (the
machine running the simulator itself) is declarative documentation today
and keeps the file a complete picture of the deployment.  The JSON twin is
``{"hosts": [{"address": ..., "role": ...}]}``.

:func:`resolve_shard_hosts` is the one normalization funnel used by the
CLI, ``RunSettings`` and ``ExperimentPlan``: it accepts a topology file
path, a comma-separated ``host:port`` list, an iterable, or ``None``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

_ROLES = ("shards", "coordinator")


@dataclass(frozen=True)
class HostSpec:
    address: str
    role: str = "shards"

    def __post_init__(self) -> None:
        from repro.net.client import parse_address

        parse_address(self.address)  # validates 'host:port' shape
        if self.role not in _ROLES:
            raise ValueError(f"role must be one of {_ROLES}; "
                             f"got '{self.role}'")


@dataclass(frozen=True)
class ShardTopology:
    """The parsed hosts × roles declaration of one deployment."""

    hosts: tuple[HostSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "hosts", tuple(self.hosts))
        if not self.shard_hosts():
            raise ValueError("topology declares no role='shards' hosts")

    def shard_hosts(self) -> tuple[str, ...]:
        """Addresses that receive shard mirrors, in declaration order."""
        return tuple(h.address for h in self.hosts if h.role == "shards")

    @classmethod
    def from_mapping(cls, data: dict) -> "ShardTopology":
        entries = data.get("hosts")
        if not isinstance(entries, list) or not entries:
            raise ValueError("topology needs a non-empty 'hosts' list")
        hosts = []
        for entry in entries:
            if isinstance(entry, str):
                hosts.append(HostSpec(address=entry))
            else:
                hosts.append(HostSpec(address=entry["address"],
                                      role=entry.get("role", "shards")))
        return cls(hosts=tuple(hosts))

    @classmethod
    def from_file(cls, path: str | Path) -> "ShardTopology":
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".toml":
            import tomllib

            data = tomllib.loads(text)
        else:
            data = json.loads(text)
        return cls.from_mapping(data)


def resolve_shard_hosts(value) -> tuple[str, ...]:
    """Normalize a hosts knob to a ``host:port`` address tuple.

    Accepts ``None``/empty (no hosts), a :class:`ShardTopology`, a path to
    a ``.toml``/``.json`` topology file, a comma-separated address list, or
    any iterable of addresses.
    """
    from repro.net.client import parse_address

    if value is None:
        return ()
    if isinstance(value, ShardTopology):
        return value.shard_hosts()
    if isinstance(value, (str, Path)):
        text = str(value).strip()
        if not text:
            return ()
        if text.lower().endswith((".toml", ".json")):
            return ShardTopology.from_file(text).shard_hosts()
        hosts = tuple(part.strip() for part in text.split(",") if part.strip())
    else:
        hosts = tuple(str(v) for v in value)
    for host in hosts:
        parse_address(host)  # fail at resolve time, not first connection
    return hosts
