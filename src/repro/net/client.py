"""Blocking client for the shard service: sessions, batches, wire metering.

The simulator side of :mod:`repro.net.shard_service`.  Three layers:

* :class:`ShardServiceClient` — one TCP connection, request/reply framing,
  error mapping.  Every byte sent/received is added to a process-wide
  counter that :func:`wire_totals` exposes, so the harness can meter shard
  traffic into the run's ``CommunicationLedger`` under the
  ``shard_service`` category.
* :class:`RemoteBankSession` — one bank's shard mirrors across the host
  list (shard ``s`` lives on ``hosts[s % len(hosts)]``).  Its
  :meth:`shard_batch` ships all of one shard's round ops in a single
  request — the batched-submission contract that makes remote dispatch
  O(shards) round trips per round.
* :func:`run_kernel_tasks` — fans matching/consolidation kernel chunks out
  across hosts by name (resolved against ``REMOTE_KERNELS`` server-side).

Any socket-level failure raises :class:`ShardServiceUnavailable`; callers
degrade to the serial backend (with a one-line warning) rather than kill
the run.  Command-level failures raise :class:`ShardServiceError` — those
are bugs, not outages, and are not swallowed.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading

import numpy as np

from repro.net import protocol


class ShardServiceError(RuntimeError):
    """The service rejected a command (protocol misuse, unknown kernel)."""


class ShardServiceUnavailable(ShardServiceError):
    """The service cannot be reached; callers should degrade to serial."""


_WIRE_LOCK = threading.Lock()
_WIRE_SENT = 0
_WIRE_RECEIVED = 0


def wire_totals() -> tuple[int, int]:
    """Process-lifetime ``(bytes_sent, bytes_received)`` over shard links.

    Snapshot before/after a run and ledger the delta; counters never reset.
    """
    with _WIRE_LOCK:
        return _WIRE_SENT, _WIRE_RECEIVED


def _count_wire(sent: int, received: int) -> None:
    global _WIRE_SENT, _WIRE_RECEIVED
    with _WIRE_LOCK:
        _WIRE_SENT += sent
        _WIRE_RECEIVED += received


def parse_address(address: str) -> tuple[str, int]:
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"shard host must be 'host:port'; got '{address}'")
    return host, int(port)


class ShardServiceClient:
    """One framed request/reply connection to a shard service."""

    def __init__(self, address: str, timeout: float = 30.0) -> None:
        self.address = address
        try:
            self._sock = socket.create_connection(parse_address(address),
                                                  timeout=timeout)
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            raise ShardServiceUnavailable(
                f"cannot connect to shard host {address}: {exc}") from exc

    def request(self, header: dict,
                arrays: list[np.ndarray] | None = None,
                ) -> tuple[dict, list[np.ndarray]]:
        try:
            sent = protocol.send_message(self._sock, header, arrays)
            reply, reply_arrays, received = protocol.recv_message(self._sock)
        except (OSError, ConnectionError, protocol.ProtocolError) as exc:
            self.close()
            raise ShardServiceUnavailable(
                f"shard host {self.address} dropped: {exc}") from exc
        _count_wire(sent, received)
        if not reply.get("ok"):
            raise ShardServiceError(
                f"shard host {self.address}: {reply.get('error', 'unknown')}")
        return reply, reply_arrays

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass


class _ClientPool:
    """Per-object connection cache: one client per distinct address."""

    def __init__(self, timeout: float = 30.0) -> None:
        self._timeout = timeout
        self._clients: dict[str, ShardServiceClient] = {}

    def get(self, address: str) -> ShardServiceClient:
        client = self._clients.get(address)
        if client is None:
            client = ShardServiceClient(address, timeout=self._timeout)
            self._clients[address] = client
        return client

    def drop(self, address: str) -> None:
        client = self._clients.pop(address, None)
        if client is not None:
            client.close()

    def request(self, address: str, header: dict,
                arrays: list[np.ndarray] | None = None):
        try:
            return self.get(address).request(header, arrays)
        except ShardServiceUnavailable:
            self.drop(address)
            raise

    def close(self) -> None:
        for client in self._clients.values():
            client.close()
        self._clients.clear()


_SESSION_IDS = itertools.count()


class RemoteBankSession:
    """One ``ShardedParamBank``'s mirrors across the shard-host list."""

    def __init__(self, hosts: tuple[str, ...], shards: int, dim: int,
                 dtype: str, capacity: int = 1,
                 timeout: float = 30.0) -> None:
        if not hosts:
            raise ValueError("RemoteBankSession needs at least one host")
        self.bank_id = f"{os.getpid()}-{next(_SESSION_IDS)}"
        self.hosts = tuple(hosts)
        self._host_for = [self.hosts[s % len(self.hosts)]
                          for s in range(shards)]
        self._pool = _ClientPool(timeout=timeout)
        for shard, address in enumerate(self._host_for):
            self._pool.request(address, {"cmd": "create", "bank": self.bank_id,
                                         "shard": shard, "dim": int(dim),
                                         "dtype": str(dtype),
                                         "capacity": int(capacity)})

    def shard_batch(self, shard: int, ops: list[dict]) -> list:
        """Run one shard's op list in a single request; per-op results."""
        arrays: list[np.ndarray] = []
        header = {"cmd": "batch", "bank": self.bank_id, "shard": int(shard),
                  "ops": protocol.encode_tree(ops, arrays)}
        reply, reply_arrays = self._pool.request(self._host_for[shard],
                                                 header, arrays)
        return protocol.decode_tree(reply["results"], reply_arrays)

    def free(self) -> None:
        """Best-effort: drop this bank's mirrors on every reachable host."""
        for address in dict.fromkeys(self._host_for):
            try:
                self._pool.request(address, {"cmd": "free",
                                             "bank": self.bank_id})
            except ShardServiceError:
                pass
        self._pool.close()

    def close(self) -> None:
        self.free()


def run_kernel_tasks(hosts: tuple[str, ...], kernel: str,
                     task_args: list[tuple]) -> list:
    """Run named-kernel chunks across hosts, one batched request per host.

    Chunk ``i`` goes to ``hosts[i % len(hosts)]``; results come back in
    chunk order, matching :func:`repro.utils.sharding.submit_shard_tasks`.
    """
    if not hosts:
        raise ShardServiceUnavailable("no shard hosts configured")
    pool = _ClientPool()
    try:
        by_host: dict[str, list[int]] = {}
        for i in range(len(task_args)):
            by_host.setdefault(hosts[i % len(hosts)], []).append(i)
        results: list = [None] * len(task_args)
        for address, indices in by_host.items():
            ops = [{"op": "kernel", "name": kernel,
                    "args": list(task_args[i])} for i in indices]
            arrays: list[np.ndarray] = []
            header = {"cmd": "batch", "bank": f"kernels-{os.getpid()}",
                      "shard": -1, "ops": protocol.encode_tree(ops, arrays)}
            reply, reply_arrays = pool.request(address, header, arrays)
            for i, value in zip(indices,
                                protocol.decode_tree(reply["results"],
                                                     reply_arrays)):
                results[i] = value
        return results
    finally:
        pool.close()
