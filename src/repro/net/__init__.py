"""Multi-host shard plane: the shard service, its wire protocol and client.

This package turns :class:`~repro.utils.params.ShardedParamBank` into a
distributed data structure: ``repro.net.shard_service`` daemons host shard
mirrors on remote machines, the client ships each shard's *batched* round
ops (row sync + aggregation matvecs + Gram blocks) in one request, and the
parent reduces the returned partials in ascending shard order — the same
reduction contract the local backends honor, so ``remote`` results are
bitwise-identical to ``serial`` and ``process``.

Nothing here imports at simulator start-up cost: consumers reach the
service lazily through ``ShardPlan(backend="remote", hosts=...)``.
"""

from repro.net.client import (
    RemoteBankSession,
    ShardServiceClient,
    ShardServiceError,
    ShardServiceUnavailable,
    wire_totals,
)
from repro.net.topology import ShardTopology, resolve_shard_hosts

__all__ = [
    "RemoteBankSession",
    "ShardServiceClient",
    "ShardServiceError",
    "ShardServiceUnavailable",
    "ShardTopology",
    "resolve_shard_hosts",
    "wire_totals",
]
