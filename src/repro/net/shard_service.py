"""Asyncio/TCP daemon hosting ``ShardedParamBank`` shards for remote plans.

Run one per host declared in the topology file::

    python -m repro.net.shard_service --host 0.0.0.0 --port 7700

A service holds *shard mirrors*: ``(bank_id, shard)``-keyed row matrices
that clients populate with ``write_rows`` ops and then query with compute
ops, all inside **one batched request per shard per round** (see
``docs/ARCHITECTURE.md``).  Commands, all framed by
:mod:`repro.net.protocol`:

``ping``
    liveness / version check.
``create``   ``{bank, shard, dim, dtype, capacity}``
    allocate (or reset) one shard mirror.
``batch``    ``{bank, shard, ops: [...]}``
    execute the shard's op list in order and return per-op results.  Ops:
    ``write_rows`` (sync dirty rows), ``matvec`` (partial ``w @ M`` over
    server-resident rows), ``gram`` (Gram block over shipped rows), and
    ``kernel`` (a name from ``repro.utils.sharding.REMOTE_KERNELS`` — the
    wire carries kernel *names*, never code).
``free``     ``{bank}``
    drop every shard mirror of one bank.
``shutdown``
    stop the daemon (used by orchestration teardown).

Errors inside a command return ``{"ok": false, "error": ...}`` and keep the
connection alive; framing errors close it.  The numpy kernels are the same
ones the serial/process backends run, and clients reduce partials in
ascending shard order, so a remote plan reproduces local results bitwise.
"""

from __future__ import annotations

import argparse
import asyncio
import threading

import numpy as np

from repro.net import protocol


class _ShardStore:
    """One server's shard mirrors: ``(bank, shard) -> growable row matrix``."""

    def __init__(self) -> None:
        self._shards: dict[tuple[str, int], np.ndarray] = {}

    def create(self, bank: str, shard: int, dim: int, dtype: str,
               capacity: int) -> None:
        rows = max(int(capacity), 1)
        self._shards[(bank, shard)] = np.zeros((rows, int(dim)),
                                               dtype=np.dtype(dtype))

    def free(self, bank: str) -> int:
        keys = [k for k in self._shards if k[0] == bank]
        for key in keys:
            del self._shards[key]
        return len(keys)

    def buffer(self, bank: str, shard: int, min_rows: int = 0) -> np.ndarray:
        try:
            buf = self._shards[(bank, shard)]
        except KeyError:
            raise KeyError(f"unknown shard {shard} of bank '{bank}' "
                           "(create it first)") from None
        if min_rows > buf.shape[0]:
            grown = np.zeros((max(min_rows, 2 * buf.shape[0]), buf.shape[1]),
                             dtype=buf.dtype)
            grown[:buf.shape[0]] = buf
            buf = self._shards[(bank, shard)] = grown
        return buf


def _apply_op(store: _ShardStore, bank: str, shard: int, op: dict):
    from repro.utils.sharding import REMOTE_KERNELS, _matvec_partial

    kind = op.get("op")
    if kind == "write_rows":
        rows = np.asarray(op["rows"], dtype=np.intp)
        data = op["data"]
        buf = store.buffer(bank, shard,
                           min_rows=int(rows.max()) + 1 if len(rows) else 0)
        buf[rows] = data
        return None
    if kind == "matvec":
        buf = store.buffer(bank, shard)
        return _matvec_partial(buf, op["rows"], op["weights"])
    if kind == "gram":
        x = np.asarray(op["x"])
        return x[np.asarray(op["positions"], dtype=np.intp)] @ x.T
    if kind == "kernel":
        try:
            fn = REMOTE_KERNELS[op["name"]]
        except KeyError:
            raise ValueError(f"unknown kernel '{op.get('name')}'") from None
        return fn(*op["args"])
    raise ValueError(f"unknown batch op '{kind}'")


class ShardService:
    """The daemon: a :class:`_ShardStore` behind an asyncio TCP server."""

    def __init__(self) -> None:
        self.store = _ShardStore()
        self._stop = asyncio.Event()

    def _dispatch(self, header: dict, arrays: list[np.ndarray]) -> tuple:
        cmd = header.get("cmd")
        if cmd == "ping":
            return {"pong": True}, []
        if cmd == "create":
            self.store.create(header["bank"], int(header["shard"]),
                              int(header["dim"]), header["dtype"],
                              int(header.get("capacity", 1)))
            return {}, []
        if cmd == "batch":
            ops = protocol.decode_tree(header["ops"], arrays)
            results = [_apply_op(self.store, header["bank"],
                                 int(header["shard"]), op) for op in ops]
            out_arrays: list[np.ndarray] = []
            return {"results": protocol.encode_tree(results, out_arrays)}, \
                out_arrays
        if cmd == "free":
            return {"freed": self.store.free(header["bank"])}, []
        if cmd == "shutdown":
            self._stop.set()
            return {}, []
        raise ValueError(f"unknown command '{cmd}'")

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    header, arrays, _ = await protocol.read_message(reader)
                except (asyncio.IncompleteReadError, ConnectionError,
                        protocol.ProtocolError):
                    break
                except asyncio.CancelledError:  # daemon shutting down
                    break
                try:
                    reply, out_arrays = self._dispatch(header, arrays)
                    reply["ok"] = True
                except Exception as exc:  # command errors keep the connection
                    reply, out_arrays = \
                        {"ok": False,
                         "error": f"{type(exc).__name__}: {exc}"}, []
                try:
                    await protocol.write_message(writer, reply, out_arrays)
                except ConnectionError:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def serve(self, host: str, port: int) -> None:
        server = await asyncio.start_server(self.handle, host, port)
        async with server:
            await self._stop.wait()
        await _cancel_outstanding()


async def _cancel_outstanding() -> None:
    """Cancel live connection handlers so the loop closes without warnings."""
    current = asyncio.current_task()
    pending = [t for t in asyncio.all_tasks() if t is not current]
    for task in pending:
        task.cancel()
    await asyncio.gather(*pending, return_exceptions=True)


class ServiceHandle:
    """A shard service running on a daemon thread (tests / single-box runs)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = ShardService()
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        box: dict = {}

        def _run() -> None:
            asyncio.set_event_loop(self._loop)

            async def _main() -> None:
                server = await asyncio.start_server(self.service.handle,
                                                    host, port)
                box["port"] = server.sockets[0].getsockname()[1]
                started.set()
                async with server:
                    await self.service._stop.wait()
                await _cancel_outstanding()

            self._loop.run_until_complete(_main())
            self._loop.close()

        self._thread = threading.Thread(target=_run, daemon=True,
                                        name="shard-service")
        self._thread.start()
        if not started.wait(timeout=10.0):  # pragma: no cover
            raise RuntimeError("shard service failed to start")
        self.address = f"{host}:{box['port']}"

    def stop(self) -> None:
        """Stop the service and join the thread (idempotent)."""
        try:
            self._loop.call_soon_threadsafe(self.service._stop.set)
        except RuntimeError:  # loop already closed by a prior stop()
            pass
        self._thread.join(timeout=10.0)


def start_in_thread(host: str = "127.0.0.1", port: int = 0) -> ServiceHandle:
    return ServiceHandle(host, port)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.shard_service",
        description="host ShardedParamBank shards for remote shard plans")
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7700,
                        help="TCP port to listen on (default: 7700)")
    args = parser.parse_args(argv)
    asyncio.run(ShardService().serve(args.host, args.port))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
