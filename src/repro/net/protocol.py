"""Framed wire protocol for the shard service: JSON header + raw ndarrays.

One message is::

    b"RSB1" | u32 header_len | header (JSON, UTF-8) | payload buffers...

The header is a plain dict.  Arrays never travel inside the JSON — they are
appended as raw C-contiguous buffers, each prefixed by a u64 byte length,
and described positionally by the auto-added ``_arrays`` header key
(``[{"shape": ..., "dtype": ...}, ...]``).  Values that *contain* arrays
(kernel argument trees, per-op results) are encoded with
:func:`encode_tree`, which swaps every ndarray for a ``{"__nd__": i}``
placeholder pointing into the payload list; :func:`decode_tree` reverses
it.  No pickle anywhere: the protocol can only express JSON plus arrays,
which is exactly what the shard kernels need and nothing an attacker can
execute.

Byte counts are exact and symmetric — both ends see the same framed bytes —
so the client can meter wire traffic into the run's
:class:`~repro.federation.accounting.CommunicationLedger`.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

import numpy as np

MAGIC = b"RSB1"
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

# A header larger than this is a framing error, not a real message (the
# header carries op descriptors and row indices, never parameter data).
MAX_HEADER_BYTES = 64 << 20


class ProtocolError(RuntimeError):
    """Malformed frame: bad magic, oversized header, or truncated stream."""


def encode_tree(obj: Any, arrays: list[np.ndarray]) -> Any:
    """Return a JSON-able mirror of ``obj``; ndarrays go to ``arrays``."""
    if isinstance(obj, np.ndarray):
        arrays.append(obj)
        return {"__nd__": len(arrays) - 1}
    if isinstance(obj, np.generic):
        return obj.item()
    if isinstance(obj, dict):
        return {str(k): encode_tree(v, arrays) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [encode_tree(v, arrays) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot encode {type(obj).__name__} on the wire")


def decode_tree(obj: Any, arrays: list[np.ndarray]) -> Any:
    """Reverse :func:`encode_tree` against the received payload arrays."""
    if isinstance(obj, dict):
        if set(obj) == {"__nd__"}:
            return arrays[obj["__nd__"]]
        return {k: decode_tree(v, arrays) for k, v in obj.items()}
    if isinstance(obj, list):
        return [decode_tree(v, arrays) for v in obj]
    return obj


def pack_message(header: dict, arrays: list[np.ndarray] | None = None) -> bytes:
    arrays = arrays or []
    head = dict(header)
    head["_arrays"] = [{"shape": list(a.shape), "dtype": str(a.dtype)}
                       for a in arrays]
    head_bytes = json.dumps(head, separators=(",", ":")).encode("utf-8")
    parts: list[bytes] = [MAGIC, _U32.pack(len(head_bytes)), head_bytes]
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        parts.append(_U64.pack(arr.nbytes))
        parts.append(arr.tobytes())
    return b"".join(parts)


def _unpack_header(raw: bytes) -> dict:
    header = json.loads(raw.decode("utf-8"))
    if not isinstance(header, dict) or "_arrays" not in header:
        raise ProtocolError("header is not a message dict")
    return header


def _array_from(buf: bytes, meta: dict) -> np.ndarray:
    arr = np.frombuffer(buf, dtype=np.dtype(meta["dtype"]))
    return arr.reshape(tuple(meta["shape"]))


def _check_prefix(magic: bytes, head_len: int) -> None:
    if magic != MAGIC:
        raise ProtocolError(f"bad magic {magic!r}")
    if head_len > MAX_HEADER_BYTES:
        raise ProtocolError(f"header of {head_len} bytes exceeds limit")


# -- blocking-socket side (client) ----------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("connection closed mid-message")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, header: dict,
                 arrays: list[np.ndarray] | None = None) -> int:
    """Send one frame; returns the exact byte count put on the wire."""
    payload = pack_message(header, arrays)
    sock.sendall(payload)
    return len(payload)


def recv_message(sock: socket.socket) -> tuple[dict, list[np.ndarray], int]:
    """Receive one frame; returns (header, arrays, bytes_received)."""
    prefix = _recv_exact(sock, len(MAGIC) + _U32.size)
    magic, head_len = prefix[:len(MAGIC)], _U32.unpack(prefix[len(MAGIC):])[0]
    _check_prefix(magic, head_len)
    header = _unpack_header(_recv_exact(sock, head_len))
    total = len(prefix) + head_len
    arrays = []
    for meta in header.pop("_arrays"):
        nbytes = _U64.unpack(_recv_exact(sock, _U64.size))[0]
        arrays.append(_array_from(_recv_exact(sock, nbytes), meta))
        total += _U64.size + nbytes
    return header, arrays, total


# -- asyncio side (service) -----------------------------------------------


async def read_message(reader) -> tuple[dict, list[np.ndarray], int]:
    """Asyncio twin of :func:`recv_message` (raises IncompleteReadError/EOF)."""
    prefix = await reader.readexactly(len(MAGIC) + _U32.size)
    magic, head_len = prefix[:len(MAGIC)], _U32.unpack(prefix[len(MAGIC):])[0]
    _check_prefix(magic, head_len)
    header = _unpack_header(await reader.readexactly(head_len))
    total = len(prefix) + head_len
    arrays = []
    for meta in header.pop("_arrays"):
        nbytes = _U64.unpack(await reader.readexactly(_U64.size))[0]
        arrays.append(_array_from(await reader.readexactly(nbytes), meta))
        total += _U64.size + nbytes
    return header, arrays, total


async def write_message(writer, header: dict,
                        arrays: list[np.ndarray] | None = None) -> int:
    payload = pack_message(header, arrays)
    writer.write(payload)
    await writer.drain()
    return len(payload)
