"""Residual blocks and the resnet_mini model (ResNet-18 analogue).

The paper's CIFAR/Tiny-ImageNet clients are ResNets; ``resnet_mini`` brings
the same structural ingredient — identity skip connections around conv
blocks — to the simulator's scale.  ``ResidualBlock`` is a composite layer:
``y = relu(conv2(relu(conv1(x))) + shortcut(x))`` with an optional 1x1
projection shortcut when channel counts change.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2d, Dense, GlobalAvgPool2d, Layer, ReLU, Standardize
from repro.nn.network import Sequential


class ResidualBlock(Layer):
    """Two 3x3 convs with an identity (or 1x1-projection) skip connection."""

    def __init__(self, in_channels: int, out_channels: int,
                 rng: np.random.Generator) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, rng, padding=1)
        self.relu1 = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, rng, padding=1)
        self.relu_out = ReLU()
        self.projection: Conv2d | None = None
        if in_channels != out_channels:
            self.projection = Conv2d(in_channels, out_channels, 1, rng)
        self._sublayers: list[Layer] = [self.conv1, self.relu1, self.conv2]
        if self.projection is not None:
            self._sublayers.append(self.projection)
        self._sublayers.append(self.relu_out)

    # Composite parameter plumbing: expose sublayer params/grads flattened in
    # a stable order so FedAvg / flatten_params treat the block uniformly.
    @property
    def params(self) -> list[np.ndarray]:  # type: ignore[override]
        return [p for layer in self._sublayers for p in layer.params]

    @params.setter
    def params(self, value: list[np.ndarray]) -> None:
        # Base Layer.__init__ assigns []; composite blocks own their
        # sublayers' arrays, so the assignment is a no-op by design.
        if value:
            raise AttributeError("assign through sublayer params instead")

    @property
    def grads(self) -> list[np.ndarray]:  # type: ignore[override]
        return [g for layer in self._sublayers for g in layer.grads]

    @grads.setter
    def grads(self, value: list[np.ndarray]) -> None:
        if value:
            raise AttributeError("assign through sublayer grads instead")

    def zero_grads(self) -> None:
        for layer in self._sublayers:
            layer.zero_grads()

    def param_owners(self) -> list[Layer]:
        # Sublayers own the arrays, in the same order ``params`` flattens them.
        return [o for layer in self._sublayers for o in layer.param_owners()]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = self.conv1.forward(x, training)
        out = self.relu1.forward(out, training)
        out = self.conv2.forward(out, training)
        if self.projection is not None:
            shortcut = self.projection.forward(x, training)
        else:
            shortcut = x
        return self.relu_out.forward(out + shortcut, training)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_sum = self.relu_out.backward(grad_out)
        # Branch 1: conv path.
        grad = self.conv2.backward(grad_sum)
        grad = self.relu1.backward(grad)
        grad_input = self.conv1.backward(grad)
        # Branch 2: skip path.
        if self.projection is not None:
            grad_input = grad_input + self.projection.backward(grad_sum)
        else:
            grad_input = grad_input + grad_sum
        return grad_input

    def output_note(self) -> str:
        proj = "proj" if self.projection is not None else "id"
        return (f"Residual({self.conv1.in_channels}->"
                f"{self.conv2.out_channels}, {proj})")


def build_resnet_mini(input_shape: tuple[int, ...], num_classes: int,
                      rng: np.random.Generator, width: int = 12,
                      embed_dim: int = 32, dtype=None) -> Sequential:
    """Two residual stages + GAP + dense embedding head.

    Features (for shift detection) come from the dense embedding layer, as
    with the other zoo models.
    """
    if len(input_shape) != 3:
        raise ValueError(f"resnet_mini expects (c, h, w) input; got {input_shape}")
    c, _h, _w = input_shape
    layers = [
        Standardize(),
        Conv2d(c, width, 3, rng, padding=1),
        ReLU(),
        ResidualBlock(width, width, rng),
        ResidualBlock(width, 2 * width, rng),
        GlobalAvgPool2d(),
        Dense(2 * width, embed_dim, rng),
        ReLU(),
        Dense(embed_dim, num_classes, rng),
    ]
    return Sequential(layers, dtype=dtype)
