"""Optimizers operating on (params, grads) lists."""

from __future__ import annotations

import numpy as np


class Optimizer:
    """Base optimizer; subclasses update ``params`` in place from ``grads``."""

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop any accumulated state (momentum buffers etc.)."""


class SGD(Optimizer):
    """SGD with optional momentum and decoupled weight decay."""

    def __init__(self, lr: float, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: list[np.ndarray] | None = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        if self.momentum == 0.0:
            for p, g in zip(params, grads):
                if self.weight_decay:
                    p *= 1.0 - self.lr * self.weight_decay
                p -= self.lr * g
            return
        if self._velocity is None or len(self._velocity) != len(params):
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v += g
            if self.weight_decay:
                p *= 1.0 - self.lr * self.weight_decay
            p -= self.lr * v

    def reset(self) -> None:
        self._velocity = None


class Adam(Optimizer):
    """Adam optimizer (used by some baselines' local steps)."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._m is None or len(self._m) != len(params):
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
            self._t = 0
        self._t += 1
        b1t = 1.0 - self.beta1 ** self._t
        b2t = 1.0 - self.beta2 ** self._t
        assert self._v is not None
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            p -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0
