"""Explicitly differentiated layers.

Every layer implements ``forward(x, training)`` and ``backward(grad_out)``;
``backward`` returns the gradient with respect to the layer input and stores
parameter gradients in ``layer.grads`` (aligned with ``layer.params``).
Convolution uses im2col so the heavy lifting stays inside BLAS.
"""

from __future__ import annotations

import numpy as np


class Layer:
    """Base class: a differentiable module with (possibly empty) parameters."""

    def __init__(self) -> None:
        self.params: list[np.ndarray] = []
        self.grads: list[np.ndarray] = []

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_grads(self) -> None:
        for g in self.grads:
            g.fill(0.0)

    def param_owners(self) -> list["Layer"]:
        """The layers whose ``params``/``grads`` lists own this layer's arrays.

        ``Sequential`` rebinds those list entries to slices of one contiguous
        flat buffer; composite layers (e.g. residual blocks) override this to
        expose their sublayers in ``params`` order.
        """
        return [self]

    def to_dtype(self, dtype: np.dtype) -> None:
        """Cast non-parameter state (e.g. running statistics) to ``dtype``.

        Parameters and gradients are cast by ``Sequential`` when it binds
        them to its flat storage; layers carrying extra float state override
        this so a model is dtype-pure end to end.
        """

    def output_note(self) -> str:
        """Short human-readable description used in ``Sequential.describe``."""
        return type(self).__name__


def _he_init(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    scale = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, scale, size=shape)


class Standardize(Layer):
    """Fixed affine input normalization ``y = (x - shift) * scale``.

    Image pipelines emit pixels in [0, 1]; this layer centers them so the
    first trainable layer sees zero-mean inputs.  It holds no parameters and
    is therefore invisible to federated averaging.
    """

    def __init__(self, shift: float = 0.5, scale: float = 2.0) -> None:
        super().__init__()
        self.shift = shift
        self.scale = scale

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return (x - self.shift) * self.scale

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self.scale


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Dense dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        weight = _he_init(rng, (in_features, out_features), in_features)
        bias = np.zeros(out_features)
        self.params = [weight, bias]
        self.grads = [np.zeros_like(weight), np.zeros_like(bias)]
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected input (n, {self.in_features}); got {x.shape}"
            )
        self._x = x if training else None
        return x @ self.params[0] + self.params[1]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward(training=True)")
        self.grads[0] += self._x.T @ grad_out
        self.grads[1] += grad_out.sum(axis=0)
        return grad_out @ self.params[0].T

    def output_note(self) -> str:
        return f"Dense({self.in_features}->{self.out_features})"


class ReLU(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        self._mask = mask if training else None
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_out * self._mask


class Tanh(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = np.tanh(x)
        self._y = y if training else None
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward(training=True)")
        return grad_out * (1.0 - self._y ** 2)


class Flatten(Layer):
    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep) / keep
        self._mask = mask.astype(x.dtype, copy=False)
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class BatchNorm(Layer):
    """Batch normalization over the feature axis of a 2-D input.

    Running statistics are part of ``state`` (not ``params``) so federated
    averaging of parameters does not mix them; they are carried alongside in
    the extra-state API used by :class:`~repro.nn.network.Sequential`.
    """

    def __init__(self, num_features: int, momentum: float = 0.9, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        gamma = np.ones(num_features)
        beta = np.zeros(num_features)
        self.params = [gamma, beta]
        self.grads = [np.zeros_like(gamma), np.zeros_like(beta)]
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)
        self._cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(f"BatchNorm expected (n, {self.num_features}); got {x.shape}")
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        if training:
            self._cache = (x_hat, inv_std, x - mean)
        return x_hat * self.params[0] + self.params[1]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_hat, inv_std, _centered = self._cache
        n = grad_out.shape[0]
        self.grads[0] += (grad_out * x_hat).sum(axis=0)
        self.grads[1] += grad_out.sum(axis=0)
        gamma = self.params[0]
        dxhat = grad_out * gamma
        return (inv_std / n) * (
            n * dxhat - dxhat.sum(axis=0) - x_hat * (dxhat * x_hat).sum(axis=0)
        )

    def to_dtype(self, dtype: np.dtype) -> None:
        self.running_mean = self.running_mean.astype(dtype, copy=False)
        self.running_var = self.running_var.astype(dtype, copy=False)

    def extra_state(self) -> dict[str, np.ndarray]:
        return {"running_mean": self.running_mean.copy(), "running_var": self.running_var.copy()}

    def load_extra_state(self, state: dict[str, np.ndarray]) -> None:
        # Preserve the model's precision when restoring checkpointed state.
        dtype = self.running_mean.dtype
        self.running_mean = state["running_mean"].astype(dtype)
        self.running_var = state["running_var"].astype(dtype)


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> tuple[np.ndarray, int, int]:
    """Expand (n, c, h, w) into columns of receptive fields.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(n * out_h * out_w, c * kh * kw)``.
    """
    n, c, h, w = x.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1
    strides = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(strides[0], strides[1], strides[2] * stride, strides[3] * stride,
                 strides[2], strides[3]),
        writeable=False,
    )
    cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), out_h, out_w


def _col2im(cols: np.ndarray, x_shape: tuple[int, int, int, int],
            kh: int, kw: int, stride: int, pad: int,
            out_h: int, out_w: int) -> np.ndarray:
    """Scatter-add column gradients back to the (padded) input."""
    n, c, h, w = x_shape
    x_padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            x_padded[:, :, i:i + stride * out_h:stride, j:j + stride * out_w:stride] += (
                cols6[:, :, :, :, i, j]
            )
    if pad:
        return x_padded[:, :, pad:-pad, pad:-pad]
    return x_padded


class Conv2d(Layer):
    """2-D convolution (NCHW) via im2col."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 rng: np.random.Generator, stride: int = 1, padding: int = 0) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid convolution hyper-parameters")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        weight = _he_init(rng, (out_channels, in_channels, kernel_size, kernel_size), fan_in)
        bias = np.zeros(out_channels)
        self.params = [weight, bias]
        self.grads = [np.zeros_like(weight), np.zeros_like(bias)]
        self._cache: tuple[np.ndarray, tuple[int, int, int, int], int, int] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2d expected (n, {self.in_channels}, h, w); got {x.shape}"
            )
        k = self.kernel_size
        cols, out_h, out_w = _im2col(x, k, k, self.stride, self.padding)
        w_mat = self.params[0].reshape(self.out_channels, -1)
        out = cols @ w_mat.T + self.params[1]
        n = x.shape[0]
        out = out.reshape(n, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        if training:
            self._cache = (cols, x.shape, out_h, out_w)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        cols, x_shape, out_h, out_w = self._cache
        k = self.kernel_size
        n = x_shape[0]
        grad_mat = grad_out.transpose(0, 2, 3, 1).reshape(n * out_h * out_w, self.out_channels)
        self.grads[0] += (grad_mat.T @ cols).reshape(self.params[0].shape)
        self.grads[1] += grad_mat.sum(axis=0)
        w_mat = self.params[0].reshape(self.out_channels, -1)
        grad_cols = grad_mat @ w_mat
        return _col2im(grad_cols, x_shape, k, k, self.stride, self.padding, out_h, out_w)

    def output_note(self) -> str:
        return (f"Conv2d({self.in_channels}->{self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


class MaxPool2d(Layer):
    """Max pooling (NCHW) with square window; window must tile the input."""

    def __init__(self, pool_size: int) -> None:
        super().__init__()
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self._cache: tuple[np.ndarray, tuple[int, ...]] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        p = self.pool_size
        n, c, h, w = x.shape
        if h % p or w % p:
            raise ValueError(f"input {h}x{w} not divisible by pool size {p}")
        xr = x.reshape(n, c, h // p, p, w // p, p)
        out = xr.max(axis=(3, 5))
        if training:
            mask = (xr == out[:, :, :, None, :, None])
            # Group the two within-window axes together, then break ties so
            # gradient flows to exactly one element per window.
            windows = mask.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, h // p, w // p, p * p)
            cum = np.cumsum(windows, axis=-1)
            first = (cum == 1) & windows
            self._cache = (first, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        first, x_shape = self._cache
        n, c, h, w = x_shape
        p = self.pool_size
        grad = first * grad_out[:, :, :, :, None]
        grad = grad.reshape(n, c, h // p, w // p, p, p).transpose(0, 1, 2, 4, 3, 5)
        return grad.reshape(n, c, h, w)


class GlobalAvgPool2d(Layer):
    """Global average pooling: (n, c, h, w) -> (n, c).

    This is the embedding layer of the paper's ResNet/DenseNet encoders; the
    features ShiftEx extracts are exactly the output of this layer.
    """

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._shape
        return np.broadcast_to(
            grad_out[:, :, None, None] / (h * w), (n, c, h, w)
        ).copy()
