"""Sequential network container with penultimate-feature extraction.

ShiftEx needs two things from a model beyond plain classification:

* ``features(x)`` — the penultimate (pre-logit) activations, which parties use
  as latent representations for MMD-based covariate shift detection
  (paper Section 4.2);
* flat parameter get/set — so the aggregator can FedAvg, compute cosine
  similarity between experts, and clone expert models.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm, Layer
from repro.utils.params import Params, flatten_params, unflatten_params


class Sequential:
    """An ordered stack of layers; the last layer produces logits.

    Parameters
    ----------
    layers : the layer stack.  By convention the final layer is the
        classification head, and ``features`` returns the input to it.
    feature_index : index of the layer whose *input* is the feature/embedding
        vector.  Defaults to the last layer (the classifier head).
    """

    def __init__(self, layers: list[Layer], feature_index: int | None = None) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = layers
        self.feature_index = len(layers) - 1 if feature_index is None else feature_index
        if not 0 <= self.feature_index < len(layers):
            raise ValueError("feature_index out of range")

    # ------------------------------------------------------------------ forward/backward

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def features(self, x: np.ndarray) -> np.ndarray:
        """Penultimate-layer activations (inference mode)."""
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers[: self.feature_index]:
            out = layer.forward(out, training=False)
        if out.ndim > 2:
            out = out.reshape(out.shape[0], -1)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(x, training=False), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        if len(y) == 0:
            raise ValueError("cannot compute accuracy on an empty set")
        return float(np.mean(self.predict(x) == np.asarray(y)))

    # ------------------------------------------------------------------ parameters

    @property
    def params(self) -> Params:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> Params:
        return [g for layer in self.layers for g in layer.grads]

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def get_params(self) -> Params:
        """Deep copy of the parameter list."""
        return [p.copy() for p in self.params]

    def set_params(self, params: Params) -> None:
        own = self.params
        if len(own) != len(params):
            raise ValueError(
                f"parameter list length mismatch: model has {len(own)}, got {len(params)}"
            )
        for dst, src in zip(own, params):
            if dst.shape != src.shape:
                raise ValueError(f"parameter shape mismatch: {dst.shape} vs {src.shape}")
            dst[...] = src

    def get_flat_params(self) -> np.ndarray:
        return flatten_params(self.params)

    def set_flat_params(self, vector: np.ndarray) -> None:
        self.set_params(unflatten_params(vector, self.params))

    @property
    def num_params(self) -> int:
        return int(sum(p.size for p in self.params))

    # ------------------------------------------------------------------ extra state

    def extra_state(self) -> list[dict[str, np.ndarray]]:
        """Non-parameter state (BatchNorm running statistics)."""
        return [
            layer.extra_state() if isinstance(layer, BatchNorm) else {}
            for layer in self.layers
        ]

    def load_extra_state(self, state: list[dict[str, np.ndarray]]) -> None:
        if len(state) != len(self.layers):
            raise ValueError("extra state length mismatch")
        for layer, st in zip(self.layers, state):
            if isinstance(layer, BatchNorm) and st:
                layer.load_extra_state(st)

    def describe(self) -> str:
        return " -> ".join(layer.output_note() for layer in self.layers)
