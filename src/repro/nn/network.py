"""Sequential network container over one contiguous parameter vector.

ShiftEx needs three things from a model beyond plain classification:

* ``features(x)`` — the penultimate (pre-logit) activations, which parties use
  as latent representations for MMD-based covariate shift detection
  (paper Section 4.2); ``forward_with_features`` returns logits *and*
  features from a single pass;
* flat parameter get/set — so the aggregator can FedAvg, compute cosine
  similarity between experts, and clone expert models;
* a precision knob — ``dtype`` selects the parameter/activation precision
  (float64 default; float32 halves memory and roughly doubles BLAS
  throughput).

Every layer's ``params``/``grads`` arrays are *views* into two contiguous
flat buffers allocated at construction, so ``flatten_params(model.params)``
is zero-copy and ``bind_to`` can point a model at external storage (e.g. a
:class:`~repro.utils.params.ParamBank` row) without copying.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import BatchNorm, Layer
from repro.utils.params import ParamSpec, Params, resolve_dtype


class Sequential:
    """An ordered stack of layers; the last layer produces logits.

    Parameters
    ----------
    layers : the layer stack.  By convention the final layer is the
        classification head, and ``features`` returns the input to it.
    feature_index : index of the layer whose *input* is the feature/embedding
        vector.  Defaults to the last layer (the classifier head).
    dtype : parameter/activation precision (``None`` = float64).  Inputs are
        cast on entry, so a float32 model runs the whole forward/backward
        pass in float32.
    """

    def __init__(self, layers: list[Layer], feature_index: int | None = None,
                 dtype=None) -> None:
        if not layers:
            raise ValueError("Sequential requires at least one layer")
        self.layers = layers
        self.feature_index = len(layers) - 1 if feature_index is None else feature_index
        if not 0 <= self.feature_index < len(layers):
            raise ValueError("feature_index out of range")
        self.dtype = resolve_dtype(dtype)
        self._owners = [o for layer in layers for o in layer.param_owners()]
        self._spec = ParamSpec.of([p for o in self._owners for p in o.params])
        flat = np.empty(self._spec.total_size, dtype=self.dtype)
        grads = np.zeros(self._spec.total_size, dtype=self.dtype)
        self._rebind(flat, grads, copy_values=True)
        for layer in layers:
            layer.to_dtype(self.dtype)

    # ------------------------------------------------------------------ storage

    def _rebind(self, flat: np.ndarray, grads: np.ndarray | None,
                copy_values: bool) -> None:
        """Point every owner's param (and grad) arrays at slices of ``flat``.

        With ``copy_values`` the current arrays are copied in first (model
        keeps its weights); without it the model adopts ``flat``'s values.
        """
        offset = 0
        for owner in self._owners:
            for i, p in enumerate(owner.params):
                view = flat[offset:offset + p.size].reshape(p.shape)
                if copy_values:
                    np.copyto(view, p, casting="same_kind")
                owner.params[i] = view
                if grads is not None:
                    gview = grads[offset:offset + p.size].reshape(p.shape)
                    if copy_values:
                        np.copyto(gview, owner.grads[i], casting="same_kind")
                    owner.grads[i] = gview
                offset += p.size
        self._flat = flat
        if grads is not None:
            self._flat_grads = grads

    def bind_to(self, vector: np.ndarray) -> None:
        """Adopt ``vector`` as parameter storage (zero-copy, both ways).

        The model's weights become ``vector``'s current values; mutating the
        vector (e.g. a :class:`~repro.utils.params.ParamBank` row) changes
        the model and vice versa.  Gradients keep their own buffer.
        """
        vector = np.asarray(vector)
        if vector.ndim != 1 or vector.size != self._spec.total_size:
            raise ValueError(
                f"cannot bind: vector has size {vector.size}, model needs "
                f"{self._spec.total_size}"
            )
        if vector.dtype != self.dtype:
            raise ValueError(
                f"cannot bind: vector dtype {vector.dtype} does not match "
                f"model dtype {self.dtype}"
            )
        self._rebind(vector, grads=None, copy_values=False)

    # ------------------------------------------------------------------ forward/backward

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.asarray(x, dtype=self.dtype)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def forward_with_features(self, x: np.ndarray, training: bool = False,
                              ) -> tuple[np.ndarray, np.ndarray]:
        """One pass returning ``(logits, features)``.

        ``features`` is the (flattened) input of the ``feature_index`` layer —
        the same array ``features()`` returns — captured without a second
        forward pass.
        """
        out = np.asarray(x, dtype=self.dtype)
        feats: np.ndarray | None = None
        for i, layer in enumerate(self.layers):
            if i == self.feature_index:
                feats = out if out.ndim <= 2 else out.reshape(out.shape[0], -1)
            out = layer.forward(out, training=training)
        assert feats is not None  # feature_index < len(layers)
        return out, feats

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def features(self, x: np.ndarray) -> np.ndarray:
        """Penultimate-layer activations (inference mode)."""
        _logits, feats = self.forward_with_features(x, training=False)
        return feats

    def predict(self, x: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(x, training=False), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        if len(y) == 0:
            raise ValueError("cannot compute accuracy on an empty set")
        return float(np.mean(self.predict(x) == np.asarray(y)))

    # ------------------------------------------------------------------ parameters

    @property
    def spec(self) -> ParamSpec:
        return self._spec

    @property
    def params(self) -> Params:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> Params:
        return [g for layer in self.layers for g in layer.grads]

    @property
    def flat_params(self) -> np.ndarray:
        """The live contiguous parameter vector (zero-copy view)."""
        return self._flat

    @property
    def flat_grads(self) -> np.ndarray:
        """The live contiguous gradient vector (zero-copy view)."""
        return self._flat_grads

    def zero_grads(self) -> None:
        self._flat_grads.fill(0.0)

    def get_params(self) -> Params:
        """Deep copy of the parameter list.

        The returned arrays are views over one fresh flat vector, so
        ``flatten_params`` on the result is zero-copy.
        """
        return self._spec.view(self._flat.copy())

    def set_params(self, params: Params) -> None:
        own = self.params
        if len(own) != len(params):
            raise ValueError(
                f"parameter list length mismatch: model has {len(own)}, got {len(params)}"
            )
        for dst, src in zip(own, params):
            if dst.shape != src.shape:
                raise ValueError(f"parameter shape mismatch: {dst.shape} vs {src.shape}")
            np.copyto(dst, src, casting="same_kind")

    def get_flat_params(self) -> np.ndarray:
        """Snapshot copy of the flat parameter vector."""
        return self._flat.copy()

    def set_flat_params(self, vector: np.ndarray) -> None:
        vector = np.asarray(vector)
        self._spec._check_vector(vector)
        np.copyto(self._flat, vector, casting="same_kind")

    @property
    def num_params(self) -> int:
        return self._spec.total_size

    # ------------------------------------------------------------------ extra state

    def extra_state(self) -> list[dict[str, np.ndarray]]:
        """Non-parameter state (BatchNorm running statistics)."""
        return [
            layer.extra_state() if isinstance(layer, BatchNorm) else {}
            for layer in self.layers
        ]

    def load_extra_state(self, state: list[dict[str, np.ndarray]]) -> None:
        if len(state) != len(self.layers):
            raise ValueError("extra state length mismatch")
        for layer, st in zip(self.layers, state):
            if isinstance(layer, BatchNorm) and st:
                layer.load_extra_state(st)

    def describe(self) -> str:
        return " -> ".join(layer.output_note() for layer in self.layers)
