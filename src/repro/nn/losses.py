"""Losses: numerically stable softmax cross-entropy with integer labels."""

from __future__ import annotations

import numpy as np


def softmax_probs(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax of a (n, k) logit matrix."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and gradient w.r.t. logits.

    Parameters
    ----------
    logits : (n, k) float array.
    labels : (n,) int array of class indices in [0, k).

    Returns
    -------
    (loss, grad) where ``grad`` has shape (n, k) and already includes the
    1/n factor, so it can be fed directly into ``Sequential.backward``.
    """
    logits = np.asarray(logits)
    in_dtype = logits.dtype if logits.dtype.kind == "f" else np.dtype(np.float64)
    logits = logits.astype(np.float64, copy=False)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D; got {logits.shape}")
    n, k = logits.shape
    if labels.shape != (n,):
        raise ValueError(f"labels must have shape ({n},); got {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= k):
        raise ValueError(f"labels out of range [0, {k})")
    probs = softmax_probs(logits)
    eps = 1e-12
    loss = float(-np.log(probs[np.arange(n), labels] + eps).mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    grad /= n
    # The loss is computed in float64 for stability, but the gradient enters
    # backprop and must match the model's activation precision.
    return loss, grad.astype(in_dtype, copy=False)
