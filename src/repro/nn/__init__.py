"""Pure-numpy neural network substrate.

The paper trains LeNet-5 / ResNet / DenseNet clients in PyTorch; this package
provides the equivalent substrate at simulator scale: explicitly
differentiated layers, a :class:`~repro.nn.network.Sequential` container
exposing both logits and the penultimate-layer *features* ShiftEx uses for
covariate-shift detection, and a local SGD/FedProx training loop.

All layers are gradient-checked in the test suite against central finite
differences.
"""

from repro.nn.layers import (
    Layer,
    Dense,
    ReLU,
    Tanh,
    Conv2d,
    MaxPool2d,
    GlobalAvgPool2d,
    Flatten,
    Dropout,
    BatchNorm,
)
from repro.nn.losses import softmax_cross_entropy, softmax_probs
from repro.nn.optim import SGD, Adam
from repro.nn.network import Sequential
from repro.nn.models import build_model, model_names, embedding_dim
from repro.nn.residual import ResidualBlock, build_resnet_mini
from repro.nn.training import LocalTrainingConfig, train_local, evaluate
from repro.nn.gradcheck import numerical_gradients, max_grad_error

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Conv2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "softmax_cross_entropy",
    "softmax_probs",
    "SGD",
    "Adam",
    "Sequential",
    "build_model",
    "ResidualBlock",
    "build_resnet_mini",
    "model_names",
    "embedding_dim",
    "LocalTrainingConfig",
    "train_local",
    "evaluate",
    "numerical_gradients",
    "max_grad_error",
]
