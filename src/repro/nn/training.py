"""Local training loop: mini-batch SGD with optional FedProx proximal term.

This is the per-party workhorse of the FL simulator.  The FedProx objective
adds ``(mu/2) * ||w - w_global||^2`` to the local loss, which materializes as
``mu * (w - w_global)`` added to every parameter gradient.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.losses import softmax_cross_entropy
from repro.nn.network import Sequential
from repro.nn.optim import SGD
from repro.utils.params import Params


@dataclass
class LocalTrainingConfig:
    """Hyper-parameters for one party's local training pass."""

    epochs: int = 1
    batch_size: int = 32
    lr: float = 0.05
    momentum: float = 0.0
    weight_decay: float = 0.0
    prox_mu: float = 0.0  # FedProx proximal coefficient; 0 disables the term.
    max_batches_per_epoch: int | None = None  # cap for simulator speed

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.prox_mu < 0:
            raise ValueError("prox_mu must be non-negative")


@dataclass
class LocalTrainingResult:
    """Outcome of a local pass: final params plus bookkeeping."""

    params: Params
    num_samples: int
    mean_loss: float
    batches: int
    losses: list[float] = field(default_factory=list)


def train_local(model: Sequential, x: np.ndarray, y: np.ndarray,
                config: LocalTrainingConfig, rng: np.random.Generator,
                global_params: Params | None = None,
                out_flat: np.ndarray | None = None) -> LocalTrainingResult:
    """Run local epochs of mini-batch SGD on ``model`` (updated in place).

    ``global_params`` anchors the FedProx proximal term; required when
    ``config.prox_mu > 0``.  ``out_flat``, when given, receives the trained
    flat parameter vector and the result's ``params`` become views of it —
    the caller can hand over a :class:`~repro.utils.params.ParamBank` row so
    the update lands directly in the aggregation bank without extra copies.
    """
    x = np.asarray(x, dtype=model.dtype)
    y = np.asarray(y)

    def result_params() -> Params:
        if out_flat is None:
            return model.get_params()
        np.copyto(out_flat, model.flat_params, casting="same_kind")
        return model.spec.view(out_flat)

    n = x.shape[0]
    if n == 0:
        return LocalTrainingResult(result_params(), 0, float("nan"), 0)
    if y.shape[0] != n:
        raise ValueError("x and y must have matching first dimension")
    if config.prox_mu > 0 and global_params is None:
        raise ValueError("prox_mu > 0 requires global_params")

    optimizer = SGD(config.lr, momentum=config.momentum, weight_decay=config.weight_decay)
    losses: list[float] = []
    batches_run = 0
    for _epoch in range(config.epochs):
        order = rng.permutation(n)
        epoch_batches = 0
        for start in range(0, n, config.batch_size):
            idx = order[start:start + config.batch_size]
            xb, yb = x[idx], y[idx]
            model.zero_grads()
            logits = model.forward(xb, training=True)
            loss, grad = softmax_cross_entropy(logits, yb)
            model.backward(grad)
            grads = model.grads
            if config.prox_mu > 0 and global_params is not None:
                params = model.params
                for g, p, gp in zip(grads, params, global_params):
                    g += config.prox_mu * (p - gp)
            optimizer.step(model.params, grads)
            losses.append(loss)
            batches_run += 1
            epoch_batches += 1
            if (config.max_batches_per_epoch is not None
                    and epoch_batches >= config.max_batches_per_epoch):
                break
    mean_loss = float(np.mean(losses)) if losses else float("nan")
    return LocalTrainingResult(result_params(), n, mean_loss, batches_run, losses)


def evaluate(model: Sequential, x: np.ndarray, y: np.ndarray,
             return_features: bool = False,
             ) -> tuple[float, float] | tuple[float, float, np.ndarray]:
    """Return (accuracy, mean loss) of ``model`` on a labelled set.

    With ``return_features`` the penultimate-layer activations come back as a
    third element, extracted from the *same* forward pass (no second sweep
    over the data).
    """
    x = np.asarray(x, dtype=model.dtype)
    y = np.asarray(y)
    if x.shape[0] == 0:
        raise ValueError("cannot evaluate on an empty set")
    if return_features:
        logits, features = model.forward_with_features(x, training=False)
    else:
        logits = model.forward(x, training=False)
    loss, _ = softmax_cross_entropy(logits, y)
    acc = float(np.mean(np.argmax(logits, axis=1) == y))
    if return_features:
        return acc, loss, features
    return acc, loss
