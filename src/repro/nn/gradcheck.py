"""Finite-difference gradient checking for the layer library.

Used by the test suite to verify every layer's analytic backward pass against
central differences of the loss.
"""

from __future__ import annotations

import numpy as np

from repro.nn.losses import softmax_cross_entropy
from repro.nn.network import Sequential


def _loss_of(model: Sequential, x: np.ndarray, y: np.ndarray) -> float:
    logits = model.forward(x, training=False)
    loss, _ = softmax_cross_entropy(logits, y)
    return loss


def numerical_gradients(model: Sequential, x: np.ndarray, y: np.ndarray,
                        eps: float = 1e-5) -> list[np.ndarray]:
    """Central-difference gradients of mean CE loss w.r.t. every parameter."""
    grads: list[np.ndarray] = []
    for param in model.params:
        grad = np.zeros_like(param)
        it = np.nditer(param, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            orig = param[idx]
            param[idx] = orig + eps
            loss_plus = _loss_of(model, x, y)
            param[idx] = orig - eps
            loss_minus = _loss_of(model, x, y)
            param[idx] = orig
            grad[idx] = (loss_plus - loss_minus) / (2 * eps)
            it.iternext()
        grads.append(grad)
    return grads


def analytic_gradients(model: Sequential, x: np.ndarray, y: np.ndarray) -> list[np.ndarray]:
    """Backprop gradients of mean CE loss (training-mode forward)."""
    model.zero_grads()
    logits = model.forward(x, training=True)
    _, grad = softmax_cross_entropy(logits, y)
    model.backward(grad)
    return [g.copy() for g in model.grads]


def max_grad_error(model: Sequential, x: np.ndarray, y: np.ndarray,
                   eps: float = 1e-5) -> float:
    """Max relative error between analytic and numerical gradients."""
    analytic = analytic_gradients(model, x, y)
    numeric = numerical_gradients(model, x, y, eps=eps)
    worst = 0.0
    for a, n in zip(analytic, numeric):
        denom = np.maximum(np.abs(a) + np.abs(n), 1e-8)
        worst = max(worst, float(np.max(np.abs(a - n) / denom)))
    return worst
