"""Model zoo.

The paper pairs each dataset with a standard architecture (LeNet-5 for
FEMNIST/Fashion-MNIST, ResNet-18/50 and DenseNet-121 for the image corpora)
and extracts penultimate-layer embeddings for shift detection.  At simulator
scale we keep the same *structure* — convolutional encoder, global pooling /
dense embedding layer, linear head — with laptop-sized widths:

* ``mlp``           — dense encoder for flat inputs (stands in for LeNet-5's
                      fully connected tail on small synthetic images).
* ``lenet_mini``    — two conv+pool blocks and a dense embedding layer; the
                      direct analogue of LeNet-5.
* ``convnet_small`` — conv encoder with global average pooling, the analogue
                      of the ResNet/DenseNet encoders whose GAP output the
                      paper uses as the latent representation.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import (
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    MaxPool2d,
    ReLU,
    Standardize,
)
from repro.nn.network import Sequential

_MODEL_NAMES = ("mlp", "lenet_mini", "convnet_small", "resnet_mini")


def model_names() -> tuple[str, ...]:
    return _MODEL_NAMES


def _flat_dim(input_shape: tuple[int, ...]) -> int:
    return int(np.prod(input_shape))


def build_mlp(input_shape: tuple[int, ...], num_classes: int, rng: np.random.Generator,
              hidden: tuple[int, ...] = (64, 32), dropout: float = 0.0,
              dtype=None) -> Sequential:
    """Dense classifier; features = activations of the last hidden layer."""
    layers: list = [Standardize()]
    if len(input_shape) > 1:
        layers.append(Flatten())
    dim = _flat_dim(input_shape)
    for width in hidden:
        layers.append(Dense(dim, width, rng))
        layers.append(ReLU())
        if dropout:
            layers.append(Dropout(dropout, rng))
        dim = width
    layers.append(Dense(dim, num_classes, rng))
    return Sequential(layers, dtype=dtype)


def build_lenet_mini(input_shape: tuple[int, ...], num_classes: int,
                     rng: np.random.Generator, embed_dim: int = 48,
                     dtype=None) -> Sequential:
    """LeNet-style conv net for (c, h, w) inputs with h, w divisible by 4."""
    if len(input_shape) != 3:
        raise ValueError(f"lenet_mini expects (c, h, w) input; got {input_shape}")
    c, h, w = input_shape
    if h % 4 or w % 4:
        raise ValueError("lenet_mini requires spatial dims divisible by 4")
    flat = 16 * (h // 4) * (w // 4)
    layers = [
        Standardize(),
        Conv2d(c, 8, 3, rng, padding=1),
        ReLU(),
        MaxPool2d(2),
        Conv2d(8, 16, 3, rng, padding=1),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Dense(flat, embed_dim, rng),
        ReLU(),
        Dense(embed_dim, num_classes, rng),
    ]
    return Sequential(layers, dtype=dtype)


def build_convnet_small(input_shape: tuple[int, ...], num_classes: int,
                        rng: np.random.Generator, width: int = 32,
                        embed_dim: int = 48, dtype=None) -> Sequential:
    """Conv encoder with global average pooling (ResNet-encoder analogue)."""
    if len(input_shape) != 3:
        raise ValueError(f"convnet_small expects (c, h, w) input; got {input_shape}")
    c, h, w = input_shape
    if h % 2 or w % 2:
        raise ValueError("convnet_small requires even spatial dims")
    layers = [
        Standardize(),
        Conv2d(c, width // 2, 3, rng, padding=1),
        ReLU(),
        MaxPool2d(2),
        Conv2d(width // 2, width, 3, rng, padding=1),
        ReLU(),
        GlobalAvgPool2d(),
        Dense(width, embed_dim, rng),
        ReLU(),
        Dense(embed_dim, num_classes, rng),
    ]
    return Sequential(layers, dtype=dtype)


def build_model(name: str, input_shape: tuple[int, ...], num_classes: int,
                rng: np.random.Generator, **kwargs) -> Sequential:
    """Construct a model by registry name.

    ``dtype`` (forwarded to every builder) selects parameter/activation
    precision: float64 default, ``dtype="float32"`` for speed/memory.
    """
    if num_classes < 2:
        raise ValueError("need at least two classes")
    if name == "mlp":
        return build_mlp(input_shape, num_classes, rng, **kwargs)
    if name == "lenet_mini":
        return build_lenet_mini(input_shape, num_classes, rng, **kwargs)
    if name == "convnet_small":
        return build_convnet_small(input_shape, num_classes, rng, **kwargs)
    if name == "resnet_mini":
        from repro.nn.residual import build_resnet_mini
        return build_resnet_mini(input_shape, num_classes, rng, **kwargs)
    raise KeyError(f"unknown model '{name}'; available: {_MODEL_NAMES}")


def embedding_dim(name: str, input_shape: tuple[int, ...], **kwargs) -> int:
    """Dimensionality of the penultimate-layer features for a model spec."""
    if name == "mlp":
        hidden = kwargs.get("hidden", (64, 32))
        return int(hidden[-1]) if hidden else _flat_dim(input_shape)
    if name == "lenet_mini":
        return int(kwargs.get("embed_dim", 48))
    if name == "convnet_small":
        return int(kwargs.get("embed_dim", 48))
    if name == "resnet_mini":
        return int(kwargs.get("embed_dim", 32))
    raise KeyError(f"unknown model '{name}'")
