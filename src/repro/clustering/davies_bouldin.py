"""Davies–Bouldin cluster-validity index (Davies & Bouldin, 1979).

Lower is better.  For each cluster the index takes the worst-case ratio of
within-cluster scatter sums to between-centroid separation, then averages
across clusters.  The paper uses this index (with an elbow criterion) to
choose how many covariate clusters — and hence candidate experts — to form.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d


def davies_bouldin_index(x: np.ndarray, labels: np.ndarray) -> float:
    """Davies–Bouldin index of a labelled clustering.

    Returns 0.0 for a single cluster (degenerate but defined: no pairs to
    compare) and for perfectly tight, well-separated clusterings.
    """
    x = check_2d(x, "x")
    labels = np.asarray(labels)
    if labels.shape != (x.shape[0],):
        raise ValueError("labels must align with rows of x")
    clusters = np.unique(labels)
    k = clusters.size
    if k < 2:
        return 0.0

    centroids = np.stack([x[labels == c].mean(axis=0) for c in clusters])
    scatters = np.array([
        float(np.linalg.norm(x[labels == c] - centroids[i], axis=1).mean())
        for i, c in enumerate(clusters)
    ])
    separations = np.linalg.norm(centroids[:, None, :] - centroids[None, :, :], axis=2)

    index = 0.0
    for i in range(k):
        ratios = [
            (scatters[i] + scatters[j]) / max(separations[i, j], 1e-12)
            for j in range(k) if j != i
        ]
        index += max(ratios)
    return float(index / k)
