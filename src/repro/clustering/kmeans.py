"""K-means with k-means++ seeding and Lloyd iterations."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_2d


@dataclass
class KMeansResult:
    """Clustering outcome: assignments, centroids, inertia, iterations."""

    labels: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int

    @property
    def num_clusters(self) -> int:
        return int(self.centroids.shape[0])

    def members(self, cluster: int) -> np.ndarray:
        return np.nonzero(self.labels == cluster)[0]


def _kmeans_pp_init(x: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = x.shape[0]
    centroids = np.empty((k, x.shape[1]))
    first = int(rng.integers(n))
    centroids[0] = x[first]
    closest_d2 = ((x - centroids[0]) ** 2).sum(axis=1)
    for j in range(1, k):
        total = closest_d2.sum()
        if total <= 1e-18:
            # All remaining points coincide with a centroid; pick uniformly.
            idx = int(rng.integers(n))
        else:
            idx = int(rng.choice(n, p=closest_d2 / total))
        centroids[j] = x[idx]
        d2 = ((x - centroids[j]) ** 2).sum(axis=1)
        closest_d2 = np.minimum(closest_d2, d2)
    return centroids


def kmeans(x: np.ndarray, k: int, rng: np.random.Generator,
           max_iter: int = 100, tol: float = 1e-6, n_init: int = 3) -> KMeansResult:
    """Cluster rows of ``x`` into ``k`` groups; best of ``n_init`` restarts.

    Empty clusters are re-seeded with the point farthest from its centroid,
    so the result always has exactly ``k`` non-empty clusters when
    ``k <= n_samples``.
    """
    x = check_2d(x, "x")
    n = x.shape[0]
    if k <= 0:
        raise ValueError("k must be positive")
    if k > n:
        raise ValueError(f"k={k} exceeds number of samples {n}")
    if n_init <= 0:
        raise ValueError("n_init must be positive")

    best: KMeansResult | None = None
    for _restart in range(n_init):
        centroids = _kmeans_pp_init(x, k, rng)
        labels = np.zeros(n, dtype=int)
        iterations = 0
        for iteration in range(1, max_iter + 1):
            iterations = iteration
            d2 = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
            labels = d2.argmin(axis=1)
            new_centroids = centroids.copy()
            for j in range(k):
                members = x[labels == j]
                if members.shape[0] == 0:
                    # Re-seed an empty cluster at the worst-fit point.
                    worst = int(d2[np.arange(n), labels].argmax())
                    new_centroids[j] = x[worst]
                    labels[worst] = j
                else:
                    new_centroids[j] = members.mean(axis=0)
            shift = float(np.abs(new_centroids - centroids).max())
            centroids = new_centroids
            if shift < tol:
                break
        d2 = ((x[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        labels = d2.argmin(axis=1)
        # Guarantee exactly k non-empty clusters even on degenerate inputs
        # (duplicate points tie on distance and argmin collapses clusters).
        for j in range(k):
            if not np.any(labels == j):
                donor_clusters = np.flatnonzero(np.bincount(labels, minlength=k) > 1)
                candidates = np.flatnonzero(np.isin(labels, donor_clusters))
                worst = candidates[d2[candidates, labels[candidates]].argmax()]
                labels[worst] = j
                centroids[j] = x[worst]
        inertia = float(d2[np.arange(n), labels].sum())
        result = KMeansResult(labels=labels, centroids=centroids,
                              inertia=inertia, iterations=iterations)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
