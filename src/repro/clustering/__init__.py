"""Clustering primitives used by the aggregator.

K-means (k-means++ initialization, Lloyd iterations) groups shifted parties
by latent profile; the Davies–Bouldin index with an elbow criterion chooses
the number of clusters (paper Section 5.2.1); cosine similarity powers
expert consolidation.
"""

from repro.clustering.kmeans import KMeansResult, kmeans
from repro.clustering.davies_bouldin import davies_bouldin_index
from repro.clustering.selection import select_num_clusters
from repro.clustering.similarity import cosine_similarity

__all__ = [
    "KMeansResult",
    "kmeans",
    "davies_bouldin_index",
    "select_num_clusters",
    "cosine_similarity",
]
