"""Vector similarity helpers."""

from __future__ import annotations

import numpy as np


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two vectors; 1.0 for two zero vectors."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na, nb = float(np.linalg.norm(a)), float(np.linalg.norm(b))
    if na == 0.0 or nb == 0.0:
        return 1.0 if na == nb else 0.0
    return float(np.dot(a, b) / (na * nb))
