"""Choosing the number of covariate clusters.

The paper determines the optimal k "using the Davies–Bouldin index ...
applying the Davies–Bouldin Index with the elbow method to determine when
creating additional clusters (and thus new experts) is justified"
(Sections 5.2.1–5.2.2).  We scan k = 1..k_max, score each clustering with
the DB index, and stop growing k when the relative improvement falls below
an elbow tolerance — penalizing unnecessary expert proliferation without a
hand-tuned lambda.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.davies_bouldin import davies_bouldin_index
from repro.clustering.kmeans import KMeansResult, kmeans
from repro.utils.validation import check_2d


def select_num_clusters(x: np.ndarray, rng: np.random.Generator,
                        k_max: int = 6, elbow_tolerance: float = 0.10,
                        ) -> tuple[int, KMeansResult, dict[int, float]]:
    """Pick k by Davies–Bouldin + elbow; return (k, clustering, scores).

    Single-cluster degenerate inputs (near-identical rows) return k = 1.
    ``elbow_tolerance`` is the minimum relative DB-index improvement required
    to accept a larger k.
    """
    x = check_2d(x, "x")
    n = x.shape[0]
    k_max = max(1, min(k_max, n))
    results: dict[int, KMeansResult] = {}
    scores: dict[int, float] = {}

    spread = float(np.linalg.norm(x - x.mean(axis=0), axis=1).mean())
    if n == 1 or spread < 1e-9:
        result = kmeans(x, 1, rng)
        return 1, result, {1: 0.0}

    for k in range(1, k_max + 1):
        result = kmeans(x, k, rng)
        results[k] = result
        if k == 1:
            # Normalized scatter of the single cluster, so k=1 competes on the
            # same scale as DB indices of k >= 2.
            scores[k] = 1.0
        else:
            scores[k] = davies_bouldin_index(x, result.labels)

    best_k = 1
    best_score = scores[1]
    for k in range(2, k_max + 1):
        improvement = (best_score - scores[k]) / max(best_score, 1e-12)
        if improvement > elbow_tolerance:
            best_k = k
            best_score = scores[k]
    return best_k, results[best_k], scores
