"""Seeded scenario sampling: random-but-replayable workloads for fuzzing.

``ScenarioGenerator(seed=k)`` is a pure function of its seed: ``sample(i)``
derives every draw from ``spawn_rng(seed, "scenario-generator", i)``, so
the same ``(seed, index)`` always yields the *identical* document — which
is what lets CI replay a failing fuzz case from nothing but its seed (the
fuzz driver also writes the doc itself as an artifact; see
:mod:`repro.scenarios.fuzz`).

The sampled space is a constrained slice of everything
:func:`~repro.scenarios.compiler.compile_scenario` accepts — small
populations, short rounds, bounded probabilities — so any sampled scenario
runs in seconds.  Drift knob ranges come from
:data:`repro.data.drift.FUZZ_RANGES`; the generator-level ranges are the
module constants below, documented as the scenario schema's fuzzing
surface.
"""

from __future__ import annotations

import numpy as np

from repro.data.drift import ARRIVALS, FUZZ_RANGES
from repro.federation.aggregation import STALENESS_POLICIES
from repro.federation.availability import SCENARIOS
from repro.scenarios.doc import ScenarioDoc
from repro.utils.rng import spawn_rng

#: Datasets the fuzzer samples over (all five registered corpora).
FUZZ_DATASETS = ("fmow_sim", "tiny_imagenet_c_sim", "cifar10_c_sim",
                 "femnist_sim", "fashion_mnist_sim")
#: Corruptions cheap enough for fuzzed drift schedules.
FUZZ_CORRUPTIONS = ("fog", "frost", "contrast", "rotation", "pixelate",
                    "gaussian_noise")
#: Bounded run-shape ranges (inclusive) keeping every sample seconds-scale.
FUZZ_RUN_RANGES = {
    "parties": (5, 8),
    "train_per_window": (24, 32),
    "test_per_window": (12, 16),
    "num_windows": (3, 4),
    "burn_in": (2, 3),
    "per_window": (1, 2),
    "participants": (3, 5),
    "dropout": (0.0, 0.4),
    "straggler": (0.0, 0.4),
    "outage": (0.0, 0.2),
    "max_drift_cohorts": 2,
}

PARTICIPATIONS = ("sync", "buffered", "async")


def _int(rng: np.random.Generator, key: str, ranges=FUZZ_RUN_RANGES) -> int:
    lo, hi = ranges[key]
    return int(rng.integers(lo, hi + 1))


def _prob(rng: np.random.Generator, key: str) -> float:
    lo, hi = FUZZ_RUN_RANGES[key]
    # Two-decimal grid: docs stay readable and replay exactly through JSON.
    return round(float(rng.uniform(lo, hi)), 2)


class ScenarioGenerator:
    """Deterministic sampler over the constrained scenario space.

    ``sample(i)`` is independent of any other index — the corpus is an
    addressable family, not a stateful stream — so a distributed fuzz run
    can shard indices without coordination.
    """

    def __init__(self, seed: int = 0,
                 datasets: tuple[str, ...] = FUZZ_DATASETS) -> None:
        self.seed = int(seed)
        self.datasets = tuple(datasets)

    def _sample_drift(self, rng: np.random.Generator,
                      num_windows: int) -> list[dict]:
        count = int(rng.integers(0, FUZZ_RUN_RANGES["max_drift_cohorts"] + 1))
        entries: list[dict] = []
        budget = 1.0
        for _ in range(count):
            lo, hi = FUZZ_RANGES["fraction"]
            fraction = round(float(rng.uniform(lo, min(hi, budget))), 2)
            if fraction <= 0.0:
                break
            budget -= fraction
            arrival = str(rng.choice(ARRIVALS))
            start_lo, start_hi = FUZZ_RANGES["start_window"]
            entry = {
                "arrival": arrival,
                "corruption": ("identity" if arrival == "class_incremental"
                               else str(rng.choice(FUZZ_CORRUPTIONS))),
                "severity": (1 if arrival == "class_incremental"
                             else _int(rng, "severity", FUZZ_RANGES)),
                "fraction": fraction,
                "start_window": int(rng.integers(
                    start_lo, min(start_hi, num_windows - 1) + 1)),
                "max_phase_offset": _int(rng, "max_phase_offset", FUZZ_RANGES),
            }
            if arrival == "gradual":
                entry["ramp_windows"] = _int(rng, "ramp_windows", FUZZ_RANGES)
            elif arrival == "recurring":
                entry["period"] = _int(rng, "period", FUZZ_RANGES)
            elif arrival == "class_incremental":
                entry["classes_per_window"] = _int(rng, "classes_per_window",
                                                   FUZZ_RANGES)
            entries.append(entry)
        return entries

    def sample(self, index: int = 0) -> ScenarioDoc:
        """The ``index``-th document of this generator's corpus."""
        rng = spawn_rng(self.seed, "scenario-generator", int(index))
        dataset = str(rng.choice(self.datasets))
        num_windows = _int(rng, "num_windows")
        drift = self._sample_drift(rng, num_windows)

        data = {
            "parties": _int(rng, "parties"),
            "train_per_window": _int(rng, "train_per_window"),
            "test_per_window": _int(rng, "test_per_window"),
        }
        if drift:
            data["num_windows"] = num_windows
        rounds = {
            "burn_in": _int(rng, "burn_in"),
            "per_window": _int(rng, "per_window"),
            "participants": _int(rng, "participants"),
        }

        availability: dict = {}
        participation = str(rng.choice(PARTICIPATIONS))
        if participation != "sync":
            availability["participation"] = participation
        if rng.random() < 0.5:
            availability["preset"] = str(rng.choice(SCENARIOS))
        for knob in ("dropout", "straggler", "outage"):
            if rng.random() < 0.5:
                availability[knob] = _prob(rng, knob)
        if participation == "buffered":
            availability["min_reports"] = int(
                rng.integers(1, rounds["participants"] + 1))
            availability["max_wait"] = int(rng.integers(1, 4))
        if participation != "sync" and rng.random() < 0.5:
            availability["staleness_policy"] = str(
                rng.choice(STALENESS_POLICIES))

        population: dict = {}
        if rng.random() < 0.3:
            population["size"] = data["parties"]
            if rng.random() < 0.5:
                population["max_resident"] = int(
                    rng.integers(2, data["parties"] + 1))

        return ScenarioDoc(
            dataset=dataset,
            strategies=["fedavg"],
            name=f"fuzz-{self.seed}-{index}",
            profile="ci",
            seeds=(int(rng.integers(0, 4)),),
            data=data,
            rounds=rounds,
            population=population,
            availability=availability,
            drift=tuple(drift),
        )

    def corpus(self, count: int, start: int = 0) -> list[ScenarioDoc]:
        """Documents ``start .. start+count-1`` of this generator's family."""
        return [self.sample(i) for i in range(start, start + count)]
