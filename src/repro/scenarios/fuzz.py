"""Bounded scenario fuzzing: sample, compile, run, check invariants.

``python -m repro.scenarios.fuzz`` drives the seeded
:class:`~repro.scenarios.generator.ScenarioGenerator` through a fixed
corpus plus (optionally) extra random seeds, checking each sampled doc:

1. **determinism** — sampling the same ``(seed, index)`` twice yields the
   identical document, and the doc survives a JSON round trip unchanged;
2. **compilation** — the doc compiles to an
   :class:`~repro.experiments.plan.ExperimentPlan` whose spec/settings
   resolve (every config class's validation runs);
3. **execution** (first ``--run`` docs per seed) — the compiled plan runs
   to completion, every run covers every scheduled window, the federation
   counters balance (``dispatched - dropped == aggregated_reports +
   expired_reports + in_flight_at_end``), and re-running the same plan
   reproduces the first run bitwise.

A failing doc is written to ``--artifact-dir`` as JSON next to a ``.err``
file with the traceback — re-run it with
``python -m repro run --scenario-file <artifact>.json``.  Exit status is
the number of failing documents (0 = green).  CI runs this in the
``scenario-fuzz`` job with the pinned corpus seed plus a few rotating
random seeds.
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from pathlib import Path

from repro.scenarios.doc import ScenarioDoc, save_scenario
from repro.scenarios.generator import ScenarioGenerator

#: The pinned corpus seed: CI always fuzzes these documents, so a
#: regression in any of them reproduces locally with no flags at all.
CORPUS_SEED = 0


def check_federation_counters(extras: dict) -> list[str]:
    """Internal-consistency checks on a run's ``extras["federation"]``.

    Every dispatched report must be accounted for exactly once: dropped on
    dispatch, aggregated, expired at a window/shape flush, or still in
    flight when the run ended.  Returns human-readable violations (empty =
    consistent); runs without an engine summary trivially pass.
    """
    fed = extras.get("federation")
    if fed is None:
        return []
    problems = []
    for key in ("dispatched", "dropped", "aggregated_reports",
                "expired_reports", "in_flight_at_end", "rounds",
                "aggregations"):
        if fed.get(key, 0) < 0:
            problems.append(f"counter {key} is negative: {fed[key]}")
    survived = fed["dispatched"] - fed["dropped"]
    accounted = (fed["aggregated_reports"] + fed["expired_reports"]
                 + fed["in_flight_at_end"])
    if survived != accounted:
        problems.append(
            f"report conservation violated: dispatched({fed['dispatched']}) "
            f"- dropped({fed['dropped']}) = {survived}, but "
            f"aggregated({fed['aggregated_reports']}) + "
            f"expired({fed['expired_reports']}) + "
            f"in_flight({fed['in_flight_at_end']}) = {accounted}")
    if fed["dropped"] > fed["dispatched"]:
        problems.append(
            f"dropped({fed['dropped']}) exceeds dispatched"
            f"({fed['dispatched']})")
    return problems


def check_run_invariants(result, spec) -> list[str]:
    """Run-level invariants every scenario must satisfy (any strategy)."""
    problems = []
    if len(result.window_series) != spec.num_windows:
        problems.append(
            f"run covered {len(result.window_series)} windows; the spec "
            f"schedules {spec.num_windows}")
    for w, series in enumerate(result.window_series):
        if not series:
            problems.append(f"window {w} recorded no accuracy points")
        for acc in series:
            if not 0.0 <= acc <= 100.0:
                problems.append(f"window {w} accuracy {acc} outside 0..100")
    problems.extend(check_federation_counters(result.extras))
    return problems


def _canonical_run(result) -> str:
    from repro.utils.serialization import run_result_to_dict

    out = run_result_to_dict(result)
    out.pop("profiler", None)  # wall-clock noise, not run state
    return json.dumps(out, sort_keys=True)


def check_scenario(doc: ScenarioDoc, run: bool = False) -> list[str]:
    """All fuzz checks for one document; returns violations (empty = pass)."""
    from repro.scenarios.compiler import compile_scenario

    rebuilt = ScenarioDoc.from_dict(
        json.loads(json.dumps(doc.to_dict())))
    if rebuilt.to_dict() != doc.to_dict():
        return ["document does not survive a JSON round trip"]
    plan = compile_scenario(doc)
    spec, _settings = plan.resolve()
    if not run:
        return []
    problems = []
    first = plan.run()
    for label, runs in first.runs.items():
        for result in runs:
            problems.extend(
                f"[{label} seed={result.seed}] {p}"
                for p in check_run_invariants(result, spec))
    replay = compile_scenario(doc).run()
    for label in first.runs:
        for a, b in zip(first.runs[label], replay.runs[label]):
            if _canonical_run(a) != _canonical_run(b):
                problems.append(
                    f"[{label} seed={a.seed}] re-run is not bitwise "
                    f"identical to the first run")
    return problems


def fuzz_seed(seed: int, count: int, run_first: int,
              artifact_dir: Path) -> int:
    """Fuzz ``count`` documents of one generator seed; returns #failures."""
    gen = ScenarioGenerator(seed=seed)
    failures = 0
    for index in range(count):
        doc = gen.sample(index)
        label = f"seed={seed} index={index} ({doc.name})"
        if gen.sample(index).to_dict() != doc.to_dict():
            print(f"FAIL {label}: generator is not deterministic")
            failures += 1
            continue
        try:
            problems = check_scenario(doc, run=index < run_first)
        except Exception:
            problems = [traceback.format_exc()]
        if problems:
            failures += 1
            artifact_dir.mkdir(parents=True, exist_ok=True)
            artifact = artifact_dir / f"{doc.name}.json"
            save_scenario(artifact, doc)
            (artifact_dir / f"{doc.name}.err").write_text(
                "\n".join(problems) + "\n")
            print(f"FAIL {label}: {len(problems)} violation(s); "
                  f"replay doc written to {artifact}")
            for p in problems:
                print(f"  - {p.splitlines()[-1] if p.strip() else p}")
        else:
            mode = "ran" if index < run_first else "compiled"
            print(f"ok   {label} [{mode}]")
    return failures


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.fuzz",
        description="Seeded scenario fuzzing with replayable artifacts.")
    parser.add_argument("--corpus", type=int, default=6, metavar="N",
                        help="documents from the pinned corpus seed "
                             f"{CORPUS_SEED} (default: 6)")
    parser.add_argument("--random-seeds", type=int, nargs="*", default=[],
                        metavar="SEED",
                        help="extra generator seeds to fuzz (CI passes "
                             "rotating values; each gets --random docs)")
    parser.add_argument("--random", type=int, default=3, metavar="M",
                        help="documents per extra random seed (default: 3)")
    parser.add_argument("--run", type=int, default=2, metavar="K",
                        help="per seed, run the first K documents "
                             "end-to-end; the rest only compile "
                             "(default: 2)")
    parser.add_argument("--artifact-dir", type=Path,
                        default=Path("fuzz-artifacts"),
                        help="where failing documents are written "
                             "(default: ./fuzz-artifacts)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    failures = fuzz_seed(CORPUS_SEED, args.corpus, args.run,
                         args.artifact_dir)
    for seed in args.random_seeds:
        failures += fuzz_seed(int(seed), args.random, args.run,
                              args.artifact_dir)
    if failures:
        print(f"{failures} scenario(s) failed; replay artifacts in "
              f"{args.artifact_dir}")
    return failures


if __name__ == "__main__":
    sys.exit(main())
