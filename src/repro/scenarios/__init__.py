"""Declarative scenario documents: workloads as data, not flag lines.

A scenario file (TOML or JSON) describes everything one experiment run
needs — population, availability trace, per-cohort drift schedule — and
:func:`compile_scenario` lowers it onto the exact
:class:`~repro.experiments.plan.ExperimentPlan` the equivalent CLI flags
would build, so scenario-driven runs reproduce flag-driven runs bitwise.
:class:`ScenarioGenerator` samples valid documents from a constrained
space for the seeded fuzz harness (``python -m repro.scenarios.fuzz``).
"""

from repro.scenarios.compiler import (
    compile_scenario,
    federation_from_knobs,
    lint_scenario,
    population_from_knobs,
)
from repro.scenarios.doc import (
    ScenarioDoc,
    load_scenario,
    save_scenario,
    scenario_from_value,
)
from repro.scenarios.generator import ScenarioGenerator

__all__ = [
    "ScenarioDoc",
    "ScenarioGenerator",
    "compile_scenario",
    "federation_from_knobs",
    "lint_scenario",
    "load_scenario",
    "population_from_knobs",
    "save_scenario",
    "scenario_from_value",
]
