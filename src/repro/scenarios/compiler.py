"""Compile a scenario doc into an :class:`~repro.experiments.plan
.ExperimentPlan`.

The compiler is deliberately thin: every block maps onto the exact config
object the equivalent CLI flag would have built, through the *same* helper
functions the CLI calls (:func:`federation_from_knobs`,
:func:`population_from_knobs`).  A scenario doc that only uses blocks the
flag surface can express therefore compiles to a plan *equal* to the
flag-built one — and equal plans run bitwise-identically, which
``tests/test_scenario_fuzz.py`` pins for every legacy preset.

Blocks the flags cannot express (``[data]`` resizing, ``[rounds]`` counts,
``[[drift]]`` schedules) compile into the plan's ``spec_override`` /
``settings_override``, derived from the profile's resolution so omitted
knobs keep their profile values.
"""

from __future__ import annotations

import dataclasses

from repro.data.drift import validate_drift_plan
from repro.experiments.plan import ExperimentPlan
from repro.federation.async_engine import FederationConfig
from repro.federation.availability import AvailabilityConfig
from repro.federation.pool import PopulationConfig
from repro.harness.profiles import get_profile
from repro.scenarios.doc import ScenarioDoc, scenario_from_value


def federation_from_knobs(participation=None, preset=None, dropout=None,
                          straggler=None, outage=None, min_reports=None,
                          max_wait=None, staleness_policy=None,
                          outage_fraction=None, outage_rounds=None,
                          straggler_zipf_a=None, max_delay_rounds=None,
                          ) -> tuple[FederationConfig | None, list[str]]:
    """Knobs -> (FederationConfig | None, warnings).

    This is the single source of truth for the flag-to-config mapping: the
    CLI's participation flags and the scenario ``[availability]`` block both
    call it, so a scenario doc and the equivalent flag line cannot drift
    apart.  All-``None`` returns ``(None, [])`` — the plan defers to the
    profile, exactly like passing no flags.
    """
    knobs = (participation, preset, dropout, straggler, outage, min_reports,
             max_wait, staleness_policy, outage_fraction, outage_rounds,
             straggler_zipf_a, max_delay_rounds)
    if all(k is None for k in knobs):
        return None, []
    warnings = []
    buffering = (min_reports is not None or max_wait is not None
                 or staleness_policy is not None)
    if participation in (None, "sync") and buffering:
        warnings.append(
            "min_reports/max_wait/staleness_policy only affect "
            "buffered/async participation; synchronous rounds ignore them")
    availability = AvailabilityConfig.scenario(preset or "none")
    overrides = {}
    if dropout is not None:
        overrides["dropout_prob"] = dropout
    if straggler is not None:
        overrides["straggler_prob"] = straggler
    if outage is not None:
        overrides["outage_prob"] = outage
    if outage_fraction is not None:
        overrides["outage_fraction"] = outage_fraction
    if outage_rounds is not None:
        overrides["outage_rounds"] = outage_rounds
    if straggler_zipf_a is not None:
        overrides["straggler_zipf_a"] = straggler_zipf_a
    if max_delay_rounds is not None:
        overrides["max_delay_rounds"] = max_delay_rounds
    if overrides:
        availability = dataclasses.replace(availability, **overrides)
    config = FederationConfig(
        mode=participation or "sync",
        min_reports=min_reports,
        max_wait_rounds=max_wait if max_wait is not None else 1,
        staleness_policy=staleness_policy or "constant",
        availability=availability,
    )
    return config, warnings


def population_from_knobs(size=None, max_resident=None, skew=None,
                          zipf_a=None, survey=None,
                          ) -> PopulationConfig | None:
    """Knobs -> PopulationConfig | None (shared by CLI and scenario docs).

    Mirrors the ``--population`` flag family: dependents without ``size``
    are an error, all-``None`` defers to the profile.
    """
    dependents = (max_resident, skew, zipf_a, survey)
    if size is None:
        if any(k is not None for k in dependents):
            raise ValueError(
                "max_resident/skew/zipf_a/survey require a population size")
        return None
    kwargs = {"size": size}
    if max_resident is not None:
        kwargs["max_resident"] = max_resident
    if skew is not None:
        kwargs["skew"] = skew
    if zipf_a is not None:
        kwargs["zipf_a"] = zipf_a
    if survey is not None:
        kwargs["survey"] = survey
    return PopulationConfig(**kwargs)


def compile_scenario(scenario, executor=None) -> ExperimentPlan:
    """Compile a :class:`~repro.scenarios.doc.ScenarioDoc` (or a mapping, or
    a path to a TOML/JSON file) into an :class:`ExperimentPlan`.

    Raises ``ValueError``/``KeyError`` with the offending block named for
    anything invalid — the same errors the CLI surfaces as exit code 2.
    """
    doc = scenario_from_value(scenario)
    spec, settings = get_profile(doc.profile, doc.dataset)

    spec_override = None
    if doc.data or doc.drift:
        overrides: dict = {}
        if "parties" in doc.data:
            overrides["num_parties"] = int(doc.data["parties"])
        if "train_per_window" in doc.data:
            overrides["train_per_window"] = int(doc.data["train_per_window"])
        if "test_per_window" in doc.data:
            overrides["test_per_window"] = int(doc.data["test_per_window"])
        if "num_windows" in doc.data:
            num_windows = int(doc.data["num_windows"])
            if num_windows < 2:
                raise ValueError(
                    f"data.num_windows must be >= 2 (window 0 is the clean "
                    f"burn-in); got {num_windows}")
            overrides["num_windows"] = num_windows
            # The drift schedule supersedes window_regimes entirely; the
            # placeholder only satisfies the spec's length validation.
            overrides["window_regimes"] = (("identity", 1),) * (num_windows - 1)
        if doc.drift:
            validate_drift_plan(
                doc.drift,
                num_windows=overrides.get("num_windows", spec.num_windows))
            overrides["drift"] = doc.drift
        spec_override = dataclasses.replace(spec, **overrides)

    settings_override = None
    if doc.rounds:
        overrides = {}
        if "burn_in" in doc.rounds:
            overrides["rounds_burn_in"] = int(doc.rounds["burn_in"])
        if "per_window" in doc.rounds:
            overrides["rounds_per_window"] = int(doc.rounds["per_window"])
        if "eval_parties" in doc.rounds:
            overrides["eval_parties"] = int(doc.rounds["eval_parties"])
        if "participants" in doc.rounds:
            overrides["round_config"] = dataclasses.replace(
                settings.round_config,
                participants_per_round=int(doc.rounds["participants"]))
        settings_override = dataclasses.replace(settings, **overrides)

    federation, _warnings = federation_from_knobs(**doc.availability)
    population = population_from_knobs(**{
        k: v for k, v in doc.population.items() if k != "cohort_size"})
    cohort_size = doc.population.get("cohort_size")

    return ExperimentPlan.build(
        doc.dataset, doc.strategies, seeds=doc.seeds, profile=doc.profile,
        name=doc.name, dtype=doc.dtype, precision=doc.precision,
        shards=doc.shards, shard_backend=doc.shard_backend,
        shard_hosts=doc.shard_hosts,
        secure_aggregation=doc.secure_aggregation,
        privacy=doc.privacy,
        federation=federation, population=population,
        cohort_size=cohort_size,
        spec_override=spec_override, settings_override=settings_override)


def lint_scenario(scenario) -> list[str]:
    """Non-fatal advisories for a scenario doc (the ``validate`` command).

    Hard errors raise from :func:`compile_scenario`; this returns the soft
    ones: buffering knobs on synchronous rounds, outage enumeration above
    the availability simulator's limit (where per-round outage *sets*
    cannot be enumerated and dispatch must go through
    ``AvailabilitySimulator.cohort_fates``).
    """
    doc = scenario_from_value(scenario)
    _config, warnings = federation_from_knobs(**doc.availability)
    size = doc.population.get("size")
    outage_on = (doc.availability.get("outage") or 0) > 0 \
        or doc.availability.get("preset") in ("flaky", "outages")
    if size is not None and outage_on:
        from repro.federation.availability import AvailabilitySimulator
        probe = AvailabilitySimulator(
            AvailabilityConfig(outage_prob=0.1), num_parties=int(size))
        if not probe.enumerates_outages:
            warnings.append(
                f"population size {size} exceeds the outage enumeration "
                f"limit ({probe.enumeration_limit}): outage membership is "
                f"per-party Bernoulli and dispatch goes through "
                f"cohort_fates() instead of enumerated outage sets")
    return warnings
