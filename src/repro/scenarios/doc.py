"""The scenario document: one declarative file describing a whole workload.

A scenario doc is a TOML or JSON file with a handful of optional blocks on
top of the required ``dataset``/``strategies`` pair:

* top level — ``name``, ``profile``, ``seeds``, ``strategies``, plus the
  run knobs that already live on :class:`~repro.experiments.plan
  .ExperimentPlan` (``dtype``/``precision``/``shards``/``shard_backend``/
  ``shard_hosts``/``secure_aggregation``);
* ``[privacy]`` — the run's :class:`~repro.privacy.plan.PrivacyPlan`:
  ``masking``, ``threshold`` (Shamir t-of-n dropout recovery; an int or
  ``"majority"``), ``sealed_scoring``, ``mask_seed``.  A top-level string
  (``privacy = "masking=on,threshold=3"``) works too;
* ``[data]`` — dataset-spec resizing: ``parties``, ``train_per_window``,
  ``test_per_window``, and (only together with drift) ``num_windows``;
* ``[rounds]`` — round counts: ``burn_in``, ``per_window``,
  ``participants``, ``eval_parties``;
* ``[population]`` — virtual-party population: ``size``, ``cohort_size``,
  ``max_resident``, ``skew``, ``zipf_a``, ``survey`` (the ``--population``
  flag family);
* ``[availability]`` — participation regime and availability trace:
  ``participation``, ``preset``, ``dropout``, ``straggler``, ``outage``,
  ``min_reports``, ``max_wait``, ``staleness_policy`` mirror the CLI flags
  one for one, plus the preset-only knobs ``outage_fraction``,
  ``outage_rounds``, ``straggler_zipf_a``, ``max_delay_rounds``;
* ``[[drift]]`` — per-cohort drift schedule entries
  (:class:`~repro.data.drift.CohortDrift`): ``arrival`` in
  ``sudden | gradual | recurring | class_incremental``, ``corruption``,
  ``severity``, ``fraction``, ``start_window``, ``ramp_windows``,
  ``period``, ``classes_per_window``, ``max_phase_offset``.

Anything omitted defers to the profile, exactly like the equivalent CLI
flag — which is what makes :func:`~repro.scenarios.compiler
.compile_scenario` reproduce flag-built plans bit for bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.data.drift import CohortDrift

TOP_LEVEL_KEYS = frozenset({
    "name", "dataset", "profile", "seeds", "strategies", "dtype",
    "precision", "shards", "shard_backend", "shard_hosts",
    "secure_aggregation", "privacy", "data", "rounds", "population",
    "availability", "drift",
})
DATA_KEYS = frozenset({"parties", "train_per_window", "test_per_window",
                       "num_windows"})
ROUNDS_KEYS = frozenset({"burn_in", "per_window", "participants",
                         "eval_parties"})
POPULATION_KEYS = frozenset({"size", "cohort_size", "max_resident", "skew",
                             "zipf_a", "survey"})
AVAILABILITY_KEYS = frozenset({
    "participation", "preset", "dropout", "straggler", "outage",
    "min_reports", "max_wait", "staleness_policy", "outage_fraction",
    "outage_rounds", "straggler_zipf_a", "max_delay_rounds",
})
PRIVACY_KEYS = frozenset({"masking", "threshold", "sealed_scoring",
                          "mask_seed"})


def _check_keys(block: str, mapping: Mapping, allowed: frozenset) -> dict:
    if not isinstance(mapping, Mapping):
        raise ValueError(f"scenario block '{block}' must be a table/mapping; "
                         f"got {type(mapping).__name__}")
    unknown = set(mapping) - allowed
    if unknown:
        raise ValueError(
            f"unknown key(s) {sorted(unknown)} in scenario block '{block}'; "
            f"valid keys: {sorted(allowed)}")
    return dict(mapping)


@dataclass
class ScenarioDoc:
    """In-memory form of one scenario file (validated, serializable).

    Block contents stay as plain dicts — validation checks key names and
    the cross-block constraints here; value-level validation happens in
    the config classes the compiler builds (AvailabilityConfig,
    PopulationConfig, RunSettings, DatasetSpec), so a bad value fails with
    the same message a bad CLI flag would.
    """

    dataset: str
    strategies: object  # list of names or {label: entry} mapping (plan-style)
    name: str = ""
    profile: str = "ci"
    seeds: tuple[int, ...] = (0,)
    dtype: str | None = None
    precision: object = None
    shards: int | None = None
    shard_backend: str | None = None
    shard_hosts: object = None
    secure_aggregation: bool | None = None
    privacy: object = None  # [privacy] table or a spec string; None = off
    data: dict = field(default_factory=dict)
    rounds: dict = field(default_factory=dict)
    population: dict = field(default_factory=dict)
    availability: dict = field(default_factory=dict)
    drift: tuple[CohortDrift, ...] = ()

    def __post_init__(self) -> None:
        if not self.dataset:
            raise ValueError("scenario needs a 'dataset'")
        if not self.strategies:
            raise ValueError("scenario needs at least one strategy")
        self.seeds = tuple(int(s) for s in self.seeds)
        self.data = _check_keys("data", self.data, DATA_KEYS)
        self.rounds = _check_keys("rounds", self.rounds, ROUNDS_KEYS)
        self.population = _check_keys("population", self.population,
                                      POPULATION_KEYS)
        self.availability = _check_keys("availability", self.availability,
                                        AVAILABILITY_KEYS)
        if isinstance(self.privacy, Mapping):
            self.privacy = _check_keys("privacy", self.privacy, PRIVACY_KEYS)
        self.drift = tuple(CohortDrift.from_value(d) for d in self.drift)
        if "num_windows" in self.data and not self.drift:
            raise ValueError(
                "data.num_windows requires a [[drift]] block: without a "
                "drift schedule the window count is part of the dataset's "
                "regime sequence")

    # --------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        out: dict = {"dataset": self.dataset, "strategies": self.strategies}
        if self.name:
            out["name"] = self.name
        out["profile"] = self.profile
        out["seeds"] = list(self.seeds)
        for key in ("dtype", "precision", "shards", "shard_backend",
                    "shard_hosts", "secure_aggregation", "privacy"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        for key in ("data", "rounds", "population", "availability"):
            block = getattr(self, key)
            if block:
                out[key] = dict(block)
        if self.drift:
            out["drift"] = [d.to_dict() for d in self.drift]
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioDoc":
        data = _check_keys("top level", data, TOP_LEVEL_KEYS)
        try:
            dataset = data.pop("dataset")
            strategies = data.pop("strategies")
        except KeyError as exc:
            raise ValueError(
                f"scenario is missing required key {exc}") from None
        drift = data.pop("drift", ())
        if isinstance(drift, Mapping):  # a single [drift] table, not [[drift]]
            drift = (drift,)
        return cls(dataset=dataset, strategies=strategies,
                   drift=tuple(drift), **data)


def load_scenario(path: str | Path) -> ScenarioDoc:
    """Read a scenario doc from ``.json`` or ``.toml`` (suffix decides)."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"scenario file not found: {path}")
    if path.suffix.lower() in (".toml", ".tml"):
        try:
            import tomllib
        except ModuleNotFoundError:  # stdlib from 3.11; package supports 3.10
            raise ValueError(
                f"reading TOML scenarios requires Python 3.11+ (tomllib); "
                f"convert {path.name} to JSON or upgrade Python") from None
        try:
            data = tomllib.loads(path.read_text())
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(f"{path} is not valid TOML: {exc}") from None
    else:
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path} is not valid JSON: {exc}") from None
    try:
        return ScenarioDoc.from_dict(data)
    except (ValueError, TypeError) as exc:
        raise ValueError(f"{path}: {exc}") from None


def save_scenario(path: str | Path, doc: ScenarioDoc) -> Path:
    """Write a scenario doc as JSON (the replay/artifact format)."""
    path = Path(path)
    path.write_text(json.dumps(doc.to_dict(), indent=2) + "\n")
    return path


def scenario_from_value(value: "ScenarioDoc | Mapping | str | Path",
                        ) -> ScenarioDoc:
    """Coerce a doc, mapping, or file path into a :class:`ScenarioDoc`."""
    if isinstance(value, ScenarioDoc):
        return value
    if isinstance(value, Mapping):
        return ScenarioDoc.from_dict(value)
    if isinstance(value, (str, Path)):
        return load_scenario(value)
    raise TypeError(f"cannot interpret scenario {value!r}")


__all__ = [
    "ScenarioDoc", "load_scenario", "save_scenario", "scenario_from_value",
]
